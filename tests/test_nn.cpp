#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "test_util.hpp"

namespace spatl::nn {
namespace {

using spatl::testutil::grad_check;

TEST(Linear, ForwardMatchesHandComputation) {
  Linear lin(2, 3);
  // W (3,2), b (3)
  lin.weight() = Tensor({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  lin.bias() = Tensor({3}, std::vector<float>{0.5f, -0.5f, 1.0f});
  Tensor x({1, 2}, std::vector<float>{1, 1});
  Tensor y = lin.forward(x, true);
  ASSERT_EQ(y.shape(), (tensor::Shape{1, 3}));
  EXPECT_FLOAT_EQ(y[0], 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y[1], 6.5f);   // 3+4-0.5
  EXPECT_FLOAT_EQ(y[2], 12.0f);  // 5+6+1
}

TEST(Linear, RejectsWrongInputWidth) {
  Linear lin(4, 2);
  Tensor x({1, 3});
  EXPECT_THROW(lin.forward(x, true), std::invalid_argument);
}

TEST(Linear, GradientCheck) {
  common::Rng rng(1);
  Linear lin(5, 4);
  lin.init_params(rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  const auto r = grad_check(lin, x);
  EXPECT_LT(r.max_rel_err, 2e-2) << "abs=" << r.max_abs_err;
}

TEST(ReLU, ForwardAndGradient) {
  ReLU relu;
  Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor g({4}, std::vector<float>{1, 1, 1, 1});
  Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  common::Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 60}));
  Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5f);
  common::Rng rng(3);
  Tensor x = Tensor::randn({100}, rng);
  Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_TRUE(tensor::allclose(x, y));
}

TEST(Dropout, TrainModeZeroesAndRescales) {
  Dropout drop(0.5f);
  Tensor x = Tensor::ones({4000});
  Tensor y = drop.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1/(1-0.5)
    }
  }
  EXPECT_NEAR(double(zeros) / double(y.numel()), 0.5, 0.05);
  // Backward uses the same mask.
  Tensor g = Tensor::ones({4000});
  Tensor dx = drop.backward(g);
  for (std::size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);
  }
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

TEST(ChannelGate, MasksSelectedChannels) {
  ChannelGate gate(3);
  gate.set_mask({1, 0, 1});
  EXPECT_NEAR(gate.keep_fraction(), 2.0 / 3.0, 1e-9);
  Tensor x = Tensor::ones({2, 3, 2, 2});
  Tensor y = gate.forward(x, true);
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t p = 0; p < 4; ++p) {
      EXPECT_FLOAT_EQ(y[(n * 3 + 0) * 4 + p], 1.0f);
      EXPECT_FLOAT_EQ(y[(n * 3 + 1) * 4 + p], 0.0f);
      EXPECT_FLOAT_EQ(y[(n * 3 + 2) * 4 + p], 1.0f);
    }
  }
  Tensor dx = gate.backward(Tensor::ones({2, 3, 2, 2}));
  EXPECT_FLOAT_EQ(dx[4], 0.0f);  // channel 1 grad zeroed
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
}

TEST(ChannelGate, RejectsWrongMaskSize) {
  ChannelGate gate(4);
  EXPECT_THROW(gate.set_mask({1, 0}), std::invalid_argument);
}

TEST(Conv2d, KnownKernelValues) {
  // Single 2x2 input, 1x1 kernel with weight 2: output = 2*input.
  Conv2d conv(1, 1, 1, 1, 0);
  conv.weight() = Tensor({1, 1}, std::vector<float>{2.0f});
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y = conv.forward(x, true);
  ASSERT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 8.0f);
}

TEST(Conv2d, AveragingKernel) {
  // 3x3 kernel of 1/9 over constant image = same constant (interior).
  Conv2d conv(1, 1, 3, 1, 1);
  conv.weight() = Tensor({1, 9}, std::vector<float>(9, 1.0f / 9.0f));
  Tensor x = Tensor::full({1, 1, 5, 5}, 9.0f);
  Tensor y = conv.forward(x, true);
  // Interior pixel: all 9 taps inside -> 9.0. Corner: only 4 taps -> 4.0.
  EXPECT_FLOAT_EQ(y.at({0, 0, 2, 2}), 9.0f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 4.0f);
}

class ConvGradCheck
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {};

TEST_P(ConvGradCheck, MatchesFiniteDifference) {
  const auto [in_ch, out_ch, kernel, stride] = GetParam();
  common::Rng rng(11);
  Conv2d conv(in_ch, out_ch, kernel, stride, kernel / 2, /*bias=*/true);
  conv.init_params(rng);
  Tensor x = Tensor::randn({2, in_ch, 6, 6}, rng);
  const auto r = grad_check(conv, x);
  EXPECT_LT(r.max_rel_err, 3e-2) << "abs=" << r.max_abs_err;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradCheck,
    ::testing::Values(std::make_tuple(1, 1, 3, 1), std::make_tuple(2, 3, 3, 1),
                      std::make_tuple(3, 2, 3, 2), std::make_tuple(2, 2, 1, 1),
                      std::make_tuple(1, 4, 5, 1)));

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  common::Rng rng(13);
  Tensor x = Tensor::randn({8, 2, 4, 4}, rng, 5.0f, 3.0f);
  Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1 after normalization with gamma=1, beta=0.
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 8; ++n) {
      for (std::size_t p = 0; p < 16; ++p) {
        mean += y[(n * 2 + c) * 16 + p];
        ++count;
      }
    }
    mean /= double(count);
    for (std::size_t n = 0; n < 8; ++n) {
      for (std::size_t p = 0; p < 16; ++p) {
        const double d = y[(n * 2 + c) * 16 + p] - mean;
        var += d * d;
      }
    }
    var /= double(count);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1, /*momentum=*/1.0f);  // running stats = last batch stats
  common::Rng rng(17);
  Tensor x = Tensor::randn({16, 1, 4, 4}, rng, 2.0f, 2.0f);
  bn.forward(x, /*train=*/true);
  // Evaluating the same batch with running stats should also normalize it.
  Tensor y = bn.forward(x, /*train=*/false);
  EXPECT_NEAR(y.mean(), 0.0f, 0.05f);
}

TEST(BatchNorm2d, GradientCheck) {
  common::Rng rng(19);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({4, 3, 3, 3}, rng);
  const auto r = grad_check(bn, x);
  EXPECT_LT(r.max_rel_err, 3e-2) << "abs=" << r.max_abs_err;
}

TEST(BatchNorm2d, BackwardWithoutTrainForwardThrows) {
  BatchNorm2d bn(1);
  Tensor x = Tensor::ones({1, 1, 2, 2});
  bn.forward(x, /*train=*/false);
  EXPECT_THROW(bn.backward(x), std::logic_error);
}

TEST(MaxPool2d, SelectsMaximaAndRoutesGradient) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 4, 4},
           std::vector<float>{1, 2, 5, 6,   //
                              3, 4, 7, 8,   //
                              9, 10, 13, 14,  //
                              11, 12, 15, 16});
  Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
  EXPECT_FLOAT_EQ(y[2], 12.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);
  Tensor g({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 1, 1}), 1.0f);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 1, 3}), 2.0f);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 3, 1}), 3.0f);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 3, 3}), 4.0f);
  EXPECT_FLOAT_EQ(dx.at({0, 0, 0, 0}), 0.0f);
}

TEST(GlobalAvgPool, MeansAndGradient) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = gap.forward(x, true);
  ASSERT_EQ(y.shape(), (tensor::Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
  Tensor g({1, 2}, std::vector<float>{4.0f, 8.0f});
  Tensor dx = gap.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[4], 2.0f);
}

TEST(Sequential, ComposesAndNamesParams) {
  Sequential seq;
  seq.emplace<Linear>(4, 8);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2);
  common::Rng rng(23);
  seq.init_params(rng);
  auto params = seq.params("net.");
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "net.0.Linear.weight");
  EXPECT_EQ(params[1].name, "net.0.Linear.bias");
  EXPECT_EQ(params[2].name, "net.2.Linear.weight");
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 2}));
}

TEST(Sequential, GradientCheckThroughStack) {
  Sequential seq;
  seq.emplace<Linear>(6, 5);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(5, 3);
  common::Rng rng(29);
  seq.init_params(rng);
  Tensor x = Tensor::randn({2, 6}, rng);
  const auto r = grad_check(seq, x);
  EXPECT_LT(r.max_rel_err, 2e-2);
}

TEST(BasicBlock, IdentitySkipPreservesShape) {
  common::Rng rng(31);
  BasicBlock block(8, 8, 1);
  block.init_params(rng);
  Tensor x = Tensor::randn({2, 8, 6, 6}, rng);
  Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_FALSE(block.has_projection());
}

TEST(BasicBlock, ProjectionHandlesStrideAndWidth) {
  common::Rng rng(37);
  BasicBlock block(4, 8, 2);
  block.init_params(rng);
  Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 8, 4, 4}));
  EXPECT_TRUE(block.has_projection());
}

TEST(BasicBlock, GradientCheck) {
  common::Rng rng(41);
  BasicBlock block(3, 4, 2);
  block.init_params(rng);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  // eps must stay small: batch-norm's curvature dominates the finite
  // difference above ~1e-2 even though the analytic gradient is exact.
  const auto r = grad_check(block, x, /*train=*/true, /*eps=*/1e-2f);
  EXPECT_LT(r.max_rel_err, 2e-2) << "abs=" << r.max_abs_err;
}

TEST(Sgd, PlainStepMatchesHandComputation) {
  Linear lin(1, 1, /*bias=*/false);
  lin.weight() = Tensor({1, 1}, std::vector<float>{1.0f});
  auto params = lin.params();
  (*params[0].grad)[0] = 2.0f;
  Sgd opt(params, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.0});
  opt.step();
  EXPECT_FLOAT_EQ(lin.weight()[0], 0.8f);
}

TEST(Sgd, MomentumAccumulates) {
  Linear lin(1, 1, /*bias=*/false);
  lin.weight() = Tensor({1, 1}, std::vector<float>{0.0f});
  auto params = lin.params();
  Sgd opt(params, {.lr = 1.0, .momentum = 0.5, .weight_decay = 0.0});
  (*params[0].grad)[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(lin.weight()[0], -1.0f);
  opt.step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(lin.weight()[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Linear lin(1, 1, /*bias=*/false);
  lin.weight() = Tensor({1, 1}, std::vector<float>{1.0f});
  auto params = lin.params();
  params[0].grad->zero();
  Sgd opt(params, {.lr = 0.1, .momentum = 0.0, .weight_decay = 0.5});
  opt.step();
  EXPECT_FLOAT_EQ(lin.weight()[0], 0.95f);  // w -= lr * wd * w
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with Adam; gradient = 2(w-3).
  Linear lin(1, 1, /*bias=*/false);
  lin.weight() = Tensor({1, 1}, std::vector<float>{0.0f});
  auto params = lin.params();
  Adam opt(params, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    (*params[0].grad)[0] = 2.0f * (lin.weight()[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(lin.weight()[0], 3.0f, 1e-2f);
}

TEST(Optimizer, ZeroGradClearsGradients) {
  Linear lin(2, 2);
  auto params = lin.params();
  params[0].grad->fill(5.0f);
  Sgd opt(params, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(params[0].grad->sum(), 0.0f);
}

TEST(ParamFlattening, RoundTrip) {
  common::Rng rng(43);
  Linear lin(3, 2);
  lin.init_params(rng);
  auto params = lin.params("p.");
  const auto flat = flatten_values(params);
  ASSERT_EQ(flat.size(), 8u);  // 6 weights + 2 biases
  lin.weight().zero();
  unflatten_values(flat, params);
  EXPECT_FLOAT_EQ(lin.weight()[0], flat[0]);
  EXPECT_THROW(unflatten_values(std::vector<float>(3), params),
               std::invalid_argument);
}

TEST(ParamFlattening, PrefixFilter) {
  Linear a(2, 2), b(2, 2);
  std::vector<ParamView> views;
  a.collect_params("encoder.0.", views);
  b.collect_params("predictor.0.", views);
  EXPECT_EQ(filter_by_prefix(views, "encoder.").size(), 2u);
  EXPECT_EQ(filter_by_prefix(views, "predictor.").size(), 2u);
  EXPECT_EQ(filter_by_prefix(views, "nothing.").size(), 0u);
}

}  // namespace
}  // namespace spatl::nn
