// Telemetry layer (DESIGN.md §10): metrics registry merge semantics —
// including under concurrent pool chunks, the TSan tier's race probe —
// span tracer ordering/windowing, exporter well-formedness, and the
// contract the whole layer hangs on: enabling telemetry must not move a
// single float of the simulation.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/runner.hpp"
#include "nn/module.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON syntax checker — enough to prove exporter output is
// machine-loadable without pulling a JSON library into the build.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();

  obs::Counter c = reg.counter("test.obs.counter");
  c.add(5);
  c.increment();

  obs::Gauge g = reg.gauge("test.obs.gauge");
  g.set(1.0);
  g.set(2.0);
  g.set(42.5);  // last write wins

  obs::Histogram h = reg.histogram("test.obs.hist", {1.0, 3.0, 5.0});
  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0 (inclusive upper bound)
  h.record(2.0);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(99.0);  // overflow

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.counter"), 6u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.obs.gauge"), 42.5);
  const obs::HistogramSnapshot& hs = snap.histograms.at("test.obs.hist");
  ASSERT_EQ(hs.buckets.size(), 4u);
  EXPECT_EQ(hs.buckets[0], 2u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.buckets[3], 1u);
  EXPECT_EQ(hs.count, 5u);
  EXPECT_NEAR(hs.sum, 0.5 + 1.0 + 2.0 + 4.0 + 99.0, 1e-5);
}

TEST(MetricsRegistry, HistogramSumSurvivesNegativeValues) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::Histogram h = reg.histogram("test.obs.signed_hist", {0.0});
  h.record(-2.5);  // sum travels as signed micro-units in a u64 slot
  h.record(1.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot& hs =
      snap.histograms.at("test.obs.signed_hist");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_NEAR(hs.sum, -1.5, 1e-5);
}

TEST(MetricsRegistry, RegistrationIsIdempotentButKindChecked) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::Counter a = reg.counter("test.obs.dup");
  obs::Counter b = reg.counter("test.obs.dup");  // same slot
  a.increment();
  b.increment();
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.dup"), 2u);
  EXPECT_THROW(reg.gauge("test.obs.dup"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.obs.dup", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, ResetZeroesButHandlesStayValid) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter c = reg.counter("test.obs.reset");
  c.add(7);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.reset"), 0u);
  c.add(3);
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.reset"), 3u);
}

// The race probe for the TSan tier: many pool threads hammer the same
// counter/histogram handles through their per-thread shards; snapshot()
// must merge to the exact total.
TEST(MetricsRegistry, ConcurrentUpdatesMergeExactlyAcrossPoolThreads) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::Counter c = reg.counter("test.obs.parallel_counter");
  obs::Histogram h = reg.histogram("test.obs.parallel_hist", {1.0, 3.0, 5.0});

  constexpr std::size_t kChunks = 64;
  common::ThreadPool pool(4);
  pool.run_chunks(kChunks, [&](std::size_t i) {
    c.add(i + 1);
    h.record(double(i % 8));
  });

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.parallel_counter"),
            kChunks * (kChunks + 1) / 2);
  const obs::HistogramSnapshot& hs =
      snap.histograms.at("test.obs.parallel_hist");
  EXPECT_EQ(hs.count, kChunks);
  // values 0..7, 8 repetitions each: {0,1} | {2,3} | {4,5} | {6,7}
  ASSERT_EQ(hs.buckets.size(), 4u);
  for (const std::uint64_t bucket : hs.buckets) EXPECT_EQ(bucket, 16u);
  EXPECT_NEAR(hs.sum, 8.0 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7), 1e-4);
}

TEST(MetricsRegistry, ThreadPoolSelfInstrumentationCountsChunks) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  common::ThreadPool pool(2);
  pool.run_chunks(10, [](std::size_t) {});
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.at("threadpool.batches"), 1u);
  EXPECT_GE(snap.counters.at("threadpool.chunks"), 10u);
  EXPECT_TRUE(snap.gauges.count("threadpool.queue_depth"));
  EXPECT_TRUE(snap.gauges.count("threadpool.busy_workers"));
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  const std::uint64_t before = tracer.cursor();
  {
    SPATL_TRACE_SPAN("test/never");
    SPATL_TRACE_SPAN("test/never_nested", "test");
  }
  EXPECT_EQ(tracer.cursor(), before);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, NestedSpansRecordDepthAndCompletionOrder) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 10);  // clears
  tracer.set_enabled(true);
  {
    SPATL_TRACE_SPAN("test/outer");
    { SPATL_TRACE_SPAN("test/inner"); }
  }
  tracer.set_enabled(false);
  const std::vector<obs::SpanEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner completes first; events() is completion (seq) order.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "test/outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);
}

TEST(Tracer, RingOverflowDropsOldest) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    SPATL_TRACE_SPAN("test/ring");
  }
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.set_capacity(1 << 16);  // restore default for later tests
}

TEST(Tracer, PhaseTotalsWindowFromCursor) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 10);
  tracer.set_enabled(true);
  { SPATL_TRACE_SPAN("test/before_window"); }
  const std::uint64_t cursor = tracer.cursor();
  { SPATL_TRACE_SPAN("test/a"); }
  { SPATL_TRACE_SPAN("test/a"); }
  { SPATL_TRACE_SPAN("test/b"); }
  tracer.set_enabled(false);
  const auto totals = tracer.phase_totals(cursor);
  ASSERT_EQ(totals.size(), 2u);  // before_window excluded, names sorted
  EXPECT_EQ(totals[0].name, "test/a");
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_EQ(totals[1].name, "test/b");
  EXPECT_EQ(totals[1].count, 1u);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(Exporters, JsonObjectEscapesAndSerializesNonFiniteAsNull) {
  obs::JsonObject obj;
  obj.add("plain", std::string("a\"b\\c\nd"))
      .add("num", 1.5)
      .add("nan", std::nan(""))
      .add("inf", HUGE_VAL)
      .add("flag", true)
      .add("count", std::uint64_t{7})
      .add("delta", std::int64_t{-3});
  const std::string text = obj.str();
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(text.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(text.find("\\\"b\\\\c\\n"), std::string::npos);
}

TEST(Exporters, MetricsObjectIsValidJson) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  reg.counter("test.obs.export_counter").add(3);
  reg.gauge("test.obs.export_gauge").set(0.25);
  reg.histogram("test.obs.export_hist", {1.0, 2.0}).record(1.5);
  const std::string text = obs::metrics_object(reg.snapshot()).str();
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"test.obs.export_counter\":3"), std::string::npos);
  EXPECT_NE(text.find("\"test.obs.export_hist\""), std::string::npos);
}

TEST(Exporters, JsonlWriterEmitsOneValidObjectPerLine) {
  const std::string path = temp_path("test_obs.jsonl");
  obs::JsonlWriter writer(path);
  for (int i = 0; i < 3; ++i) {
    obs::JsonObject rec;
    rec.add("type", "probe").add("i", std::uint64_t(i));
    writer.write(rec);
  }
  EXPECT_EQ(writer.lines(), 3u);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
  }
}

TEST(Exporters, ChromeTraceIsValidJsonWithOneEventPerSpan) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 10);
  tracer.set_enabled(true);
  { SPATL_TRACE_SPAN("test/trace_export"); }
  { SPATL_TRACE_SPAN("test/trace_export2", "test"); }
  tracer.set_enabled(false);
  const std::string path = temp_path("test_obs.trace.json");
  obs::write_chrome_trace(tracer, path);
  const std::string text = read_file(path);
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"test/trace_export\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"test\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Federated runner integration

fl::RunResult run_fed(fl::RunOptions opts, std::vector<float>* params_out) {
  data::SyntheticConfig scfg;
  scfg.num_samples = 240;
  scfg.image_size = 8;
  scfg.num_classes = 10;
  scfg.noise_stddev = 0.2f;
  scfg.seed = 11;
  const auto source = data::make_synth_cifar(scfg);
  common::Rng rng(13);
  fl::FlEnvironment env(source, /*clients=*/4, /*beta=*/0.5,
                        /*val_fraction=*/0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  fl::FedAvg algo(env, cfg);
  fl::RunResult result = fl::run_federated(algo, opts);
  if (params_out != nullptr) {
    *params_out = nn::flatten_values(algo.global_model().all_params());
  }
  return result;
}

TEST(Telemetry, RunnerEmitsOneRoundRecordPerRoundWithPhases) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 16);
  tracer.set_enabled(true);
  const std::string path = temp_path("test_obs_rounds.jsonl");
  {
    obs::JsonlWriter telemetry(path);
    fl::RunOptions opts;
    opts.rounds = 3;
    opts.eval_every = 2;
    opts.telemetry = &telemetry;
    const fl::RunResult result = run_fed(opts, nullptr);
    EXPECT_EQ(telemetry.lines(), 3u);
    // RunResult totals are derived from the final ledger snapshot.
    EXPECT_EQ(result.total_bytes, result.comm.total());
    EXPECT_EQ(result.retransmitted_bytes, result.comm.retransmitted);
  }
  tracer.set_enabled(false);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"type\":\"round\""), std::string::npos);
    EXPECT_NE(line.find("\"algo\":\"fedavg\""), std::string::npos);
    EXPECT_NE(line.find("\"selected\":"), std::string::npos);
    EXPECT_NE(line.find("\"comm\":{"), std::string::npos);
    EXPECT_NE(line.find("\"uplink_bytes\":"), std::string::npos);
    // Tracing was on: per-phase wall-time attribution rides along.
    EXPECT_NE(line.find("\"phases\":{"), std::string::npos);
    EXPECT_NE(line.find("\"fl/train\""), std::string::npos);
    EXPECT_NE(line.find("\"fl/aggregate\""), std::string::npos);
  }
  // eval_every = 2 → eval summary lands on rounds 2 and 3 (final round).
  EXPECT_EQ(lines[0].find("\"eval\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"eval\":"), std::string::npos);
}

TEST(Telemetry, TelemetryEveryStrideStillEmitsFinalRound) {
  const std::string path = temp_path("test_obs_stride.jsonl");
  obs::JsonlWriter telemetry(path);
  fl::RunOptions opts;
  opts.rounds = 5;
  opts.eval_every = 100;
  opts.telemetry = &telemetry;
  opts.telemetry_every = 2;
  run_fed(opts, nullptr);
  // Rounds 2, 4 (stride) + 5 (final) = 3 records.
  EXPECT_EQ(telemetry.lines(), 3u);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines.back().find("\"round\":5"), std::string::npos);
}

// The load-bearing invariant: telemetry + tracing observe the run, they
// never participate in it. Global parameters must match bit for bit.
TEST(Telemetry, EnabledTelemetryIsBitIdenticalToDisabled) {
  fl::RunOptions opts;
  opts.rounds = 3;
  opts.eval_every = 2;

  std::vector<float> baseline;
  run_fed(opts, &baseline);

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 16);
  tracer.set_enabled(true);
  std::vector<float> traced;
  {
    obs::JsonlWriter telemetry(temp_path("test_obs_bitid.jsonl"));
    fl::RunOptions opts_t = opts;
    opts_t.telemetry = &telemetry;
    run_fed(opts_t, &traced);
  }
  tracer.set_enabled(false);

  ASSERT_EQ(baseline.size(), traced.size());
  EXPECT_EQ(std::memcmp(baseline.data(), traced.data(),
                        baseline.size() * sizeof(float)),
            0)
      << "telemetry changed the simulation";
}

}  // namespace
}  // namespace spatl
