// Telemetry layer (DESIGN.md §10): metrics registry merge semantics —
// including under concurrent pool chunks, the TSan tier's race probe —
// span tracer ordering/windowing, exporter well-formedness, and the
// contract the whole layer hangs on: enabling telemetry must not move a
// single float of the simulation.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/comm.hpp"
#include "fl/runner.hpp"
#include "nn/module.hpp"
#include "obs/alert.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile.hpp"
#include "obs/trace.hpp"

namespace spatl {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON syntax checker — enough to prove exporter output is
// machine-loadable without pulling a JSON library into the build.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    for (;;) {
      if (!value()) return false;
      ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();

  obs::Counter c = reg.counter("test.obs.counter");
  c.add(5);
  c.increment();

  obs::Gauge g = reg.gauge("test.obs.gauge");
  g.set(1.0);
  g.set(2.0);
  g.set(42.5);  // last write wins

  obs::Histogram h = reg.histogram("test.obs.hist", {1.0, 3.0, 5.0});
  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0 (inclusive upper bound)
  h.record(2.0);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(99.0);  // overflow

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.counter"), 6u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.obs.gauge"), 42.5);
  const obs::HistogramSnapshot& hs = snap.histograms.at("test.obs.hist");
  ASSERT_EQ(hs.buckets.size(), 4u);
  EXPECT_EQ(hs.buckets[0], 2u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.buckets[3], 1u);
  EXPECT_EQ(hs.count, 5u);
  EXPECT_NEAR(hs.sum, 0.5 + 1.0 + 2.0 + 4.0 + 99.0, 1e-5);
}

TEST(MetricsRegistry, HistogramSumSurvivesNegativeValues) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::Histogram h = reg.histogram("test.obs.signed_hist", {0.0});
  h.record(-2.5);  // sum travels as signed micro-units in a u64 slot
  h.record(1.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramSnapshot& hs =
      snap.histograms.at("test.obs.signed_hist");
  EXPECT_EQ(hs.count, 2u);
  EXPECT_NEAR(hs.sum, -1.5, 1e-5);
}

TEST(MetricsRegistry, RegistrationIsIdempotentButKindChecked) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::Counter a = reg.counter("test.obs.dup");
  obs::Counter b = reg.counter("test.obs.dup");  // same slot
  a.increment();
  b.increment();
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.dup"), 2u);
  EXPECT_THROW(reg.gauge("test.obs.dup"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("test.obs.dup", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, ResetZeroesButHandlesStayValid) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter c = reg.counter("test.obs.reset");
  c.add(7);
  reg.reset();
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.reset"), 0u);
  c.add(3);
  EXPECT_EQ(reg.snapshot().counters.at("test.obs.reset"), 3u);
}

// The race probe for the TSan tier: many pool threads hammer the same
// counter/histogram handles through their per-thread shards; snapshot()
// must merge to the exact total.
TEST(MetricsRegistry, ConcurrentUpdatesMergeExactlyAcrossPoolThreads) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::Counter c = reg.counter("test.obs.parallel_counter");
  obs::Histogram h = reg.histogram("test.obs.parallel_hist", {1.0, 3.0, 5.0});

  constexpr std::size_t kChunks = 64;
  common::ThreadPool pool(4);
  pool.run_chunks(kChunks, [&](std::size_t i) {
    c.add(i + 1);
    h.record(double(i % 8));
  });

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test.obs.parallel_counter"),
            kChunks * (kChunks + 1) / 2);
  const obs::HistogramSnapshot& hs =
      snap.histograms.at("test.obs.parallel_hist");
  EXPECT_EQ(hs.count, kChunks);
  // values 0..7, 8 repetitions each: {0,1} | {2,3} | {4,5} | {6,7}
  ASSERT_EQ(hs.buckets.size(), 4u);
  for (const std::uint64_t bucket : hs.buckets) EXPECT_EQ(bucket, 16u);
  EXPECT_NEAR(hs.sum, 8.0 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7), 1e-4);
}

TEST(MetricsRegistry, ThreadPoolSelfInstrumentationCountsChunks) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  common::ThreadPool pool(2);
  pool.run_chunks(10, [](std::size_t) {});
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.at("threadpool.batches"), 1u);
  EXPECT_GE(snap.counters.at("threadpool.chunks"), 10u);
  EXPECT_TRUE(snap.gauges.count("threadpool.queue_depth"));
  EXPECT_TRUE(snap.gauges.count("threadpool.busy_workers"));
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  const std::uint64_t before = tracer.cursor();
  {
    SPATL_TRACE_SPAN("test/never");
    SPATL_TRACE_SPAN("test/never_nested", "test");
  }
  EXPECT_EQ(tracer.cursor(), before);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, NestedSpansRecordDepthAndCompletionOrder) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 10);  // clears
  tracer.set_enabled(true);
  {
    SPATL_TRACE_SPAN("test/outer");
    { SPATL_TRACE_SPAN("test/inner"); }
  }
  tracer.set_enabled(false);
  const std::vector<obs::SpanEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner completes first; events() is completion (seq) order.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "test/outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);
}

TEST(Tracer, RingOverflowDropsOldest) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    SPATL_TRACE_SPAN("test/ring");
  }
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.set_capacity(1 << 16);  // restore default for later tests
}

TEST(Tracer, PhaseTotalsWindowFromCursor) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 10);
  tracer.set_enabled(true);
  { SPATL_TRACE_SPAN("test/before_window"); }
  const std::uint64_t cursor = tracer.cursor();
  { SPATL_TRACE_SPAN("test/a"); }
  { SPATL_TRACE_SPAN("test/a"); }
  { SPATL_TRACE_SPAN("test/b"); }
  tracer.set_enabled(false);
  const auto totals = tracer.phase_totals(cursor);
  ASSERT_EQ(totals.size(), 2u);  // before_window excluded, names sorted
  EXPECT_EQ(totals[0].name, "test/a");
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_EQ(totals[1].name, "test/b");
  EXPECT_EQ(totals[1].count, 1u);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(Exporters, JsonObjectEscapesAndSerializesNonFiniteAsNull) {
  obs::JsonObject obj;
  obj.add("plain", std::string("a\"b\\c\nd"))
      .add("num", 1.5)
      .add("nan", std::nan(""))
      .add("inf", HUGE_VAL)
      .add("flag", true)
      .add("count", std::uint64_t{7})
      .add("delta", std::int64_t{-3});
  const std::string text = obj.str();
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(text.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(text.find("\\\"b\\\\c\\n"), std::string::npos);
}

TEST(Exporters, MetricsObjectIsValidJson) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  reg.counter("test.obs.export_counter").add(3);
  reg.gauge("test.obs.export_gauge").set(0.25);
  reg.histogram("test.obs.export_hist", {1.0, 2.0}).record(1.5);
  const std::string text = obs::metrics_object(reg.snapshot()).str();
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"test.obs.export_counter\":3"), std::string::npos);
  EXPECT_NE(text.find("\"test.obs.export_hist\""), std::string::npos);
}

TEST(Exporters, JsonlWriterEmitsOneValidObjectPerLine) {
  const std::string path = temp_path("test_obs.jsonl");
  obs::JsonlWriter writer(path);
  for (int i = 0; i < 3; ++i) {
    obs::JsonObject rec;
    rec.add("type", "probe").add("i", std::uint64_t(i));
    writer.write(rec);
  }
  EXPECT_EQ(writer.lines(), 3u);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
  }
}

TEST(Exporters, ChromeTraceIsValidJsonWithOneEventPerSpan) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 10);
  tracer.set_enabled(true);
  { SPATL_TRACE_SPAN("test/trace_export"); }
  { SPATL_TRACE_SPAN("test/trace_export2", "test"); }
  tracer.set_enabled(false);
  const std::string path = temp_path("test_obs.trace.json");
  obs::write_chrome_trace(tracer, path);
  const std::string text = read_file(path);
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"test/trace_export\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"test\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Federated runner integration

fl::RunResult run_fed(fl::RunOptions opts, std::vector<float>* params_out) {
  data::SyntheticConfig scfg;
  scfg.num_samples = 240;
  scfg.image_size = 8;
  scfg.num_classes = 10;
  scfg.noise_stddev = 0.2f;
  scfg.seed = 11;
  const auto source = data::make_synth_cifar(scfg);
  common::Rng rng(13);
  fl::FlEnvironment env(source, /*clients=*/4, /*beta=*/0.5,
                        /*val_fraction=*/0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  fl::FedAvg algo(env, cfg);
  fl::RunResult result = fl::run_federated(algo, opts);
  if (params_out != nullptr) {
    *params_out = nn::flatten_values(algo.global_model().all_params());
  }
  return result;
}

TEST(Telemetry, RunnerEmitsOneRoundRecordPerRoundWithPhases) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 16);
  tracer.set_enabled(true);
  const std::string path = temp_path("test_obs_rounds.jsonl");
  {
    obs::JsonlWriter telemetry(path);
    fl::RunOptions opts;
    opts.rounds = 3;
    opts.eval_every = 2;
    opts.telemetry = &telemetry;
    const fl::RunResult result = run_fed(opts, nullptr);
    EXPECT_EQ(telemetry.lines(), 3u);
    // RunResult totals are derived from the final ledger snapshot.
    EXPECT_EQ(result.total_bytes, result.comm.total());
    EXPECT_EQ(result.retransmitted_bytes, result.comm.retransmitted);
  }
  tracer.set_enabled(false);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"type\":\"round\""), std::string::npos);
    EXPECT_NE(line.find("\"algo\":\"fedavg\""), std::string::npos);
    EXPECT_NE(line.find("\"selected\":"), std::string::npos);
    EXPECT_NE(line.find("\"comm\":{"), std::string::npos);
    EXPECT_NE(line.find("\"uplink_bytes\":"), std::string::npos);
    // Tracing was on: per-phase wall-time attribution rides along.
    EXPECT_NE(line.find("\"phases\":{"), std::string::npos);
    EXPECT_NE(line.find("\"fl/train\""), std::string::npos);
    EXPECT_NE(line.find("\"fl/aggregate\""), std::string::npos);
  }
  // eval_every = 2 → eval summary lands on rounds 2 and 3 (final round).
  EXPECT_EQ(lines[0].find("\"eval\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"eval\":"), std::string::npos);
}

TEST(Telemetry, TelemetryEveryStrideStillEmitsFinalRound) {
  const std::string path = temp_path("test_obs_stride.jsonl");
  obs::JsonlWriter telemetry(path);
  fl::RunOptions opts;
  opts.rounds = 5;
  opts.eval_every = 100;
  opts.telemetry = &telemetry;
  opts.telemetry_every = 2;
  run_fed(opts, nullptr);
  // Rounds 2, 4 (stride) + 5 (final) = 3 records.
  EXPECT_EQ(telemetry.lines(), 3u);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines.back().find("\"round\":5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// json_escape known answers (the control-character path in particular)

TEST(Exporters, JsonEscapeControlCharacterKnownAnswers) {
  EXPECT_EQ(obs::json_escape("plain ascii"), "plain ascii");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  // The three named short escapes...
  EXPECT_EQ(obs::json_escape("\n\r\t"), "\\n\\r\\t");
  // ...and every other control character as \u00XX.
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string("\x08", 1)), "\\u0008");
  EXPECT_EQ(obs::json_escape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(obs::json_escape(std::string("a\0b", 3)), "a\\u0000b");
  // 0x20 (space) is the first character that passes through untouched.
  EXPECT_EQ(obs::json_escape(" ~"), " ~");
  // An escaped payload embedded in a record stays machine-loadable.
  obs::JsonObject rec;
  rec.add("msg", std::string("bad\x02 value\n"));
  EXPECT_TRUE(JsonChecker::valid(rec.str())) << rec.str();
  EXPECT_NE(rec.str().find("\\u0002"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries in the exported snapshot

TEST(Exporters, HistogramBucketBoundsRideTheSnapshot) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();
  auto h = registry.histogram("test.bounds_ms", {1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0: <= 1
  h.record(5.0);    // bucket 1: (1, 10]
  h.record(50.0);   // bucket 2: (10, 100]
  h.record(500.0);  // overflow bucket
  const std::string text =
      obs::metrics_object(registry.snapshot()).str();
  EXPECT_TRUE(JsonChecker::valid(text)) << text;
  // The bounds array makes bucket counts self-describing: a consumer can
  // reconstruct "1 sample <= 1ms, 1 in (1,10], ..." from the record alone.
  EXPECT_NE(text.find("\"test.bounds_ms\":{\"bounds\":[1,10,100],"
                      "\"buckets\":[1,1,1,1]"),
            std::string::npos)
      << text;
  registry.reset();
}

// ---------------------------------------------------------------------------
// Log-bucket quantile sketch

TEST(QuantileSketch, QuantilesStayWithinTheRelativeErrorBound) {
  obs::LogBucketSketch s(0.01);
  for (int i = 1; i <= 1000; ++i) s.record(double(i));
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  // Nearest rank over 1..1000: quantile q lands on value q*999 + 1.
  EXPECT_NEAR(s.quantile(0.50), 500.0, 500.0 * 0.01 + 1e-9);
  EXPECT_NEAR(s.quantile(0.90), 900.0, 900.0 * 0.01 + 1e-9);
  EXPECT_NEAR(s.quantile(0.95), 950.0, 950.0 * 0.01 + 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 991.0, 991.0 * 0.01 + 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 1000.0, 1000.0 * 0.01 + 1e-9);
  // Bounded memory: 1000 distinct values collapse into O(log range / α)
  // buckets, far fewer than one per sample.
  EXPECT_LT(s.bucket_count(), 400u);
}

TEST(QuantileSketch, MergeEqualsRecordingTheUnion) {
  obs::LogBucketSketch evens(0.02), odds(0.02), all(0.02);
  for (int i = 1; i <= 500; ++i) {
    (i % 2 == 0 ? evens : odds).record(double(i));
    all.record(double(i));
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), all.count());
  EXPECT_DOUBLE_EQ(evens.sum(), all.sum());
  // Same buckets, same counts → identical estimates, not just close ones.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(evens.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, RejectsBadAccuracyAndMismatchedMerge) {
  EXPECT_THROW(obs::LogBucketSketch(0.0), std::invalid_argument);
  EXPECT_THROW(obs::LogBucketSketch(1.0), std::invalid_argument);
  obs::LogBucketSketch a(0.01), b(0.02);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, IgnoresNonFiniteAndTracksZeroes) {
  obs::LogBucketSketch s;
  s.record(std::nan(""));
  s.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 0u);
  s.record(0.0);
  s.record(0.0);
  s.record(8.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_NEAR(s.quantile(1.0), 8.0, 8.0 * 0.01 + 1e-9);
  const obs::SketchSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 8.0);
  EXPECT_DOUBLE_EQ(snap.relative_accuracy, 0.01);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, SketchPlaneRegistersExportsAndResets) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();
  auto sk = registry.sketch("test.sketch_ms");
  for (int i = 1; i <= 100; ++i) sk.record(double(i));
  // Re-registration under the same accuracy returns the same sketch...
  registry.sketch("test.sketch_ms").record(200.0);
  obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.sketches.count("test.sketch_ms"), 1u);
  EXPECT_EQ(snap.sketches["test.sketch_ms"].count, 101u);
  EXPECT_NEAR(snap.sketches["test.sketch_ms"].p50, 51.0, 51.0 * 0.011);
  // ...while an accuracy mismatch is a registration bug, loudly rejected.
  EXPECT_THROW(registry.sketch("test.sketch_ms", 0.05),
               std::invalid_argument);
  registry.reset();
  snap = registry.snapshot();
  ASSERT_EQ(snap.sketches.count("test.sketch_ms"), 1u);
  EXPECT_EQ(snap.sketches["test.sketch_ms"].count, 0u);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, RingKeepsLastNAndDumpsValidJson) {
  const std::string path = temp_path("test_obs_flight_ring.jsonl");
  {
    obs::JsonlWriter sink(path);
    obs::FlightRecorder flight(&sink, 3);
    for (std::uint64_t r = 1; r <= 5; ++r) {
      flight.record_round(
          r, obs::JsonObject().add("round", r).add("ok", true).str());
    }
    EXPECT_EQ(flight.window_size(), 3u);
    EXPECT_EQ(flight.rounds_seen(), 5u);
    EXPECT_EQ(flight.rounds_dropped(), 2u);
    flight.dump("unit_probe", 5);
    EXPECT_EQ(flight.dumps(), 1u);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& rec = lines[0];
  EXPECT_TRUE(JsonChecker::valid(rec)) << rec;
  EXPECT_NE(rec.find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(rec.find("\"trigger\":\"unit_probe\""), std::string::npos);
  EXPECT_NE(rec.find("\"first_round\":3"), std::string::npos);
  EXPECT_NE(rec.find("\"last_round\":5"), std::string::npos);
  // The dropped rounds are really gone from the embedded window.
  EXPECT_EQ(rec.find("{\"round\":2,"), std::string::npos);
  EXPECT_NE(rec.find("{\"round\":4,"), std::string::npos);
}

TEST(FlightRecorder, NullSinkCountsDumpsWithoutWriting) {
  obs::FlightRecorder flight(nullptr, 4);
  flight.record_round(1, "{}");
  flight.dump("unit_probe", 1);
  flight.dump("unit_probe", 1);
  EXPECT_EQ(flight.dumps(), 2u);
  EXPECT_EQ(flight.window_size(), 1u);
}

// ---------------------------------------------------------------------------
// Alert edge-trigger semantics under checkpoint replay

TEST(Alerts, EdgeTriggerReArmsAcrossCheckpointReplay) {
  const std::string path = temp_path("test_obs_alert_rearm.jsonl");
  obs::JsonlWriter sink(path);
  obs::AlertWatcher watcher(&sink);
  watcher.add_rule({"rej_high", "fl.reject_rate", 0.5, /*above=*/true});
  watcher.observe("fl.reject_rate", 0.2, 1);  // good side
  watcher.observe("fl.reject_rate", 0.8, 2);  // crossing → fires
  watcher.observe("fl.reject_rate", 0.9, 3);  // sustained breach: silent
  EXPECT_EQ(watcher.alerts_emitted(), 1u);
  // Crash rollback: the runner restores round 1 and replays. The replayed
  // good-side observation must re-arm the rule so the repeated breach
  // alerts again instead of staying latched from before the rollback.
  watcher.observe("fl.reject_rate", 0.2, 1);
  watcher.observe("fl.reject_rate", 0.8, 2);
  EXPECT_EQ(watcher.alerts_emitted(), 2u);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"type\":\"alert\""), std::string::npos);
    EXPECT_NE(line.find("\"rule\":\"rej_high\""), std::string::npos);
    EXPECT_NE(line.find("\"round\":2"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Communication snapshot deltas

TEST(Comm, SinceReportsDeltasAndSurvivesLedgerReset) {
  fl::CommLedger ledger;
  ledger.add_uplink_floats(100);  // 400 bytes
  const fl::CommSnapshot before = ledger.snapshot();
  ledger.add_downlink_bytes(1000.0);
  ledger.add_uplink_retransmit_bytes(50.0);
  fl::CommSnapshot delta = ledger.snapshot().since(before);
  EXPECT_DOUBLE_EQ(delta.uplink, 50.0);
  EXPECT_DOUBLE_EQ(delta.downlink, 1000.0);
  EXPECT_DOUBLE_EQ(delta.retransmitted, 50.0);
  // A reset (or restore to an older snapshot) between observations makes
  // the later totals smaller than `before`: since() then reports the flow
  // since that reset — never a negative delta.
  ledger.reset();
  ledger.add_uplink_floats(10);  // 40 bytes since the reset
  delta = ledger.snapshot().since(before);
  EXPECT_DOUBLE_EQ(delta.uplink, 40.0);
  EXPECT_DOUBLE_EQ(delta.downlink, 0.0);
  EXPECT_DOUBLE_EQ(delta.retransmitted, 0.0);
  EXPECT_DOUBLE_EQ(delta.total(), 40.0);
  // Restore semantics: counters continue from the restored totals.
  ledger.restore(before);
  ledger.add_downlink_bytes(8.0);
  delta = ledger.snapshot().since(before);
  EXPECT_DOUBLE_EQ(delta.uplink, 0.0);
  EXPECT_DOUBLE_EQ(delta.downlink, 8.0);
}

// The load-bearing invariant: telemetry + tracing observe the run, they
// never participate in it. Global parameters must match bit for bit.
TEST(Telemetry, EnabledTelemetryIsBitIdenticalToDisabled) {
  fl::RunOptions opts;
  opts.rounds = 3;
  opts.eval_every = 2;

  std::vector<float> baseline;
  run_fed(opts, &baseline);

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(1 << 16);
  tracer.set_enabled(true);
  std::vector<float> traced;
  {
    obs::JsonlWriter telemetry(temp_path("test_obs_bitid.jsonl"));
    fl::RunOptions opts_t = opts;
    opts_t.telemetry = &telemetry;
    run_fed(opts_t, &traced);
  }
  tracer.set_enabled(false);

  ASSERT_EQ(baseline.size(), traced.size());
  EXPECT_EQ(std::memcmp(baseline.data(), traced.data(),
                        baseline.size() * sizeof(float)),
            0)
      << "telemetry changed the simulation";
}

// Same contract for the flight recorder: a run with the ring attached (and
// dumping during a crash drill) must finish with bit-identical parameters
// to the same run without it.
TEST(Telemetry, FlightRecorderOffSwitchIsBitIdentical) {
  fl::RunOptions opts;
  opts.rounds = 4;
  opts.eval_every = 2;
  opts.checkpoint_every = 1;
  opts.crash_at_rounds = {2};

  std::vector<float> baseline;
  run_fed(opts, &baseline);

  const std::string path = temp_path("test_obs_flight_run.jsonl");
  std::vector<float> flown;
  {
    obs::JsonlWriter telemetry(path);
    obs::FlightRecorder flight(&telemetry, 2);
    fl::RunOptions opts_f = opts;
    opts_f.telemetry = &telemetry;
    // Stride past every round: the ring must still capture each one, so
    // the dump carries rounds the JSONL stream itself skipped.
    opts_f.telemetry_every = 100;
    opts_f.flight = &flight;
    run_fed(opts_f, &flown);
    EXPECT_EQ(flight.dumps(), 1u);
  }

  ASSERT_EQ(baseline.size(), flown.size());
  EXPECT_EQ(std::memcmp(baseline.data(), flown.data(),
                        baseline.size() * sizeof(float)),
            0)
      << "flight recorder changed the simulation";

  bool found_flight = false;
  for (const std::string& line : read_lines(path)) {
    if (line.find("\"type\":\"flight\"") == std::string::npos) continue;
    found_flight = true;
    EXPECT_TRUE(JsonChecker::valid(line)) << line;
    EXPECT_NE(line.find("\"trigger\":\"crash_drill\""), std::string::npos);
    // Rounds 1 and 2 never produced telemetry lines (stride 100), yet the
    // window preserved their rendered records for the incident dump.
    EXPECT_NE(line.find("\"first_round\":1"), std::string::npos);
    EXPECT_NE(line.find("\"last_round\":2"), std::string::npos);
  }
  EXPECT_TRUE(found_flight);
}

}  // namespace
}  // namespace spatl
