#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace spatl::tensor {
namespace {

TEST(Matmul, MatchesHandComputedValues) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c[0], 58.0f);
  EXPECT_FLOAT_EQ(c[1], 64.0f);
  EXPECT_FLOAT_EQ(c[2], 139.0f);
  EXPECT_FLOAT_EQ(c[3], 154.0f);
}

TEST(Matmul, RejectsIncompatibleShapes) {
  Tensor a({2, 3}), b({2, 2}), c;
  EXPECT_THROW(matmul(a, b, c), std::invalid_argument);
}

// Reference naive matmul in double for cross-validation.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += double(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = float(acc);
    }
  }
  return c;
}

Tensor transpose2d(const Tensor& t) {
  const std::size_t m = t.dim(0), n = t.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = t[i * n + j];
  }
  return out;
}

class MatmulRandomized : public ::testing::TestWithParam<
                             std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(MatmulRandomized, AllVariantsAgreeWithNaive) {
  const auto [m, k, n] = GetParam();
  common::Rng rng(m * 1000 + k * 100 + n);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  const Tensor expected = naive_matmul(a, b);

  Tensor c;
  matmul(a, b, c);
  EXPECT_TRUE(allclose(c, expected, 1e-3f));

  Tensor c_tn;
  matmul_tn(transpose2d(a), b, c_tn);
  EXPECT_TRUE(allclose(c_tn, expected, 1e-3f));

  Tensor c_nt;
  matmul_nt(a, transpose2d(b), c_nt);
  EXPECT_TRUE(allclose(c_nt, expected, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulRandomized,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 9), std::make_tuple(1, 64, 1),
                      std::make_tuple(64, 1, 64)));

TEST(Im2col, IdentityKernelReproducesInput) {
  // 1x1 kernel, stride 1, no padding: columns == channel-major pixels.
  common::Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Conv2dGeom g{3, 4, 4, /*kernel=*/1, /*stride=*/1, /*pad=*/0};
  Tensor cols;
  im2col(x, g, cols);
  ASSERT_EQ(cols.shape(), (Shape{2 * 16, 3}));
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t p = 0; p < 16; ++p) {
        EXPECT_FLOAT_EQ(cols[(n * 16 + p) * 3 + c],
                        x[(n * 3 + c) * 16 + p]);
      }
    }
  }
}

TEST(Im2col, PaddingProducesZerosOutsideImage) {
  Tensor x = Tensor::ones({1, 1, 2, 2});
  Conv2dGeom g{1, 2, 2, /*kernel=*/3, /*stride=*/1, /*pad=*/1};
  Tensor cols;
  im2col(x, g, cols);
  // Top-left output position: only the bottom-right 2x2 of the kernel
  // overlaps the image.
  ASSERT_EQ(cols.shape(), (Shape{4, 9}));
  EXPECT_FLOAT_EQ(cols[0 * 9 + 0], 0.0f);  // (-1,-1)
  EXPECT_FLOAT_EQ(cols[0 * 9 + 4], 1.0f);  // (0,0)
  EXPECT_FLOAT_EQ(cols[0 * 9 + 8], 1.0f);  // (1,1)
}

class Im2colAdjoint
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {};

TEST_P(Im2colAdjoint, DotProductIdentityHolds) {
  // col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
  const auto [channels, size, kernel, stride] = GetParam();
  const std::size_t pad = kernel / 2;
  common::Rng rng(99);
  Tensor x = Tensor::randn({2, channels, size, size}, rng);
  Conv2dGeom g{channels, size, size, kernel, stride, pad};
  Tensor cols;
  im2col(x, g, cols);
  Tensor y = Tensor::randn(cols.shape(), rng);
  Tensor xback;
  col2im(y, g, 2, xback);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += double(cols[i]) * y[i];
  }
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += double(x[i]) * xback[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(std::make_tuple(1, 4, 3, 1), std::make_tuple(3, 6, 3, 1),
                      std::make_tuple(2, 8, 3, 2), std::make_tuple(4, 5, 1, 1),
                      std::make_tuple(2, 7, 5, 1),
                      std::make_tuple(3, 8, 5, 2)));

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Tensor logits({2, 3}, std::vector<float>{1, 2, 3, -1, -2, -3});
  Tensor probs;
  softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += probs[r * 3 + c];
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_GT(probs[3], probs[4]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, std::vector<float>{1000.0f, 1001.0f});
  Tensor probs;
  softmax_rows(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_NEAR(probs[0] + probs[1], 1.0f, 1e-6f);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({4, 10});
  std::vector<int> labels = {0, 3, 7, 9};
  const float loss = cross_entropy(logits, labels);
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  common::Rng rng(17);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<int> labels = {1, 4, 0};
  Tensor grad;
  const float base = cross_entropy(logits, labels, &grad);
  (void)base;
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float numeric =
        (cross_entropy(lp, labels) - cross_entropy(lm, labels)) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 2e-3f) << "at logit " << i;
  }
}

TEST(CrossEntropy, RejectsOutOfRangeLabel) {
  Tensor logits({1, 3});
  EXPECT_THROW(cross_entropy(logits, {5}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {-1}), std::invalid_argument);
}

TEST(ArgmaxAccuracy, Basics) {
  Tensor scores({2, 3}, std::vector<float>{0.1f, 0.9f, 0.0f,  //
                                           5.0f, 1.0f, 2.0f});
  const auto idx = argmax_rows(scores);
  EXPECT_EQ(idx, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 2}), 0.0);
}

// Regression: a (N, 0) input used to walk max_element over an empty range
// and hand back index 0 into a zero-width row; now it is rejected up front.
TEST(ArgmaxAccuracy, RejectsZeroWidthRows) {
  Tensor scores({3, 0});
  EXPECT_THROW(argmax_rows(scores), std::invalid_argument);
  // No rows at all is fine — there is nothing to take a maximum over.
  Tensor empty({0, 0});
  EXPECT_TRUE(argmax_rows(empty).empty());
}

TEST(AllFinite, DetectsNonFiniteAnywhere) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> v(100, 1.0f);
  EXPECT_TRUE(all_finite(v.data(), v.size()));
  v[99] = nan;
  EXPECT_FALSE(all_finite(v.data(), v.size()));
  v[99] = -inf;
  EXPECT_FALSE(all_finite(v.data(), v.size()));
  EXPECT_TRUE(all_finite(v.data(), 0));
}

// --- NaN/Inf propagation (the PR's tentpole bug) ---------------------------
//
// The historical kernels skipped a_ip == 0 terms unconditionally, so a NaN
// or Inf in B was silently swallowed wherever the (pruned) row of A was
// zero — 0 * NaN must be NaN per IEEE-754, and the divergence guard counts
// on these kernels propagating exploded values. The oracle below forms
// every product unconditionally.

Tensor oracle_matmul_full(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

/// NaN positions and finite values must both agree with the oracle.
void expect_matches_oracle(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  for (std::size_t i = 0; i < got.numel(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << "element " << i << " lost its NaN";
    } else {
      EXPECT_FLOAT_EQ(got[i], want[i]) << "element " << i;
    }
  }
}

class MatmulNonFinite : public ::testing::TestWithParam<float> {};

TEST_P(MatmulNonFinite, ZeroPrunedRowsStillPropagate) {
  const float poison = GetParam();
  common::Rng rng(0xBAD);
  Tensor a = Tensor::randn({6, 8}, rng);
  // Prune: zero out two full rows of A (the salient-pruning pattern that
  // used to swallow the poison).
  for (std::size_t p = 0; p < 8; ++p) a[1 * 8 + p] = a[4 * 8 + p] = 0.0f;
  Tensor b = Tensor::randn({8, 5}, rng);
  b[2 * 5 + 3] = poison;  // one poisoned element of B

  const Tensor want = oracle_matmul_full(a, b);
  // On the pruned rows column 3 must be NaN: 0 * NaN and 0 * Inf are both
  // NaN. (Non-pruned rows see NaN or +/-Inf depending on the poison.)
  ASSERT_TRUE(std::isnan(want[1 * 5 + 3])) << "oracle must poison col 3";
  ASSERT_TRUE(std::isnan(want[4 * 5 + 3])) << "oracle must poison col 3";

  Tensor c;
  matmul(a, b, c);
  expect_matches_oracle(c, want);

  Tensor c_tn;
  matmul_tn(transpose2d(a), b, c_tn);
  expect_matches_oracle(c_tn, want);

  Tensor c_nt;
  matmul_nt(a, transpose2d(b), c_nt);
  expect_matches_oracle(c_nt, want);
}

TEST_P(MatmulNonFinite, PoisonedAWithFiniteBPropagates) {
  const float poison = GetParam();
  common::Rng rng(0xBAD2);
  Tensor a = Tensor::randn({4, 6}, rng);
  a[2 * 6 + 1] = poison;
  Tensor b = Tensor::randn({6, 3}, rng);

  const Tensor want = oracle_matmul_full(a, b);
  Tensor c;
  matmul(a, b, c);
  expect_matches_oracle(c, want);
}

INSTANTIATE_TEST_SUITE_P(
    Poisons, MatmulNonFinite,
    ::testing::Values(std::numeric_limits<float>::quiet_NaN(),
                      std::numeric_limits<float>::infinity(),
                      -std::numeric_limits<float>::infinity()));

}  // namespace
}  // namespace spatl::tensor
