// Cross-cutting property and equivalence tests: algebraic identities the
// implementation must satisfy regardless of scale or seed.
#include <gtest/gtest.h>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"
#include "prune/flops.hpp"
#include "prune/saliency.hpp"
#include "rl/ppo.hpp"

namespace spatl {
namespace {

data::Dataset tiny_data(std::uint64_t seed = 5) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 240;
  cfg.image_size = 8;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

fl::FlConfig tiny_config() {
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  cfg.local.lr = 0.05;
  cfg.seed = 77;
  return cfg;
}

TEST(Equivalence, FedProxWithZeroMuEqualsFedAvg) {
  // The proximal term vanishes at mu = 0, so FedProx must reproduce FedAvg
  // bit for bit under identical seeds.
  const auto source = tiny_data();
  auto run = [&](const std::string& name, double mu) {
    common::Rng rng(3);
    fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
    auto cfg = tiny_config();
    cfg.fedprox_mu = mu;
    auto algo = fl::make_baseline(name, env, cfg);
    fl::RunOptions ro;
    ro.rounds = 2;
    fl::run_federated(*algo, ro);
    return nn::flatten_values(algo->global_model().all_params());
  };
  EXPECT_EQ(run("fedprox", 0.0), run("fedavg", 0.0));
  EXPECT_NE(run("fedprox", 0.1), run("fedavg", 0.0));
}

TEST(Equivalence, SpatlFullMaskAggregationEqualsDenseMean) {
  // With selection off, every position is uploaded by every client, so the
  // masked update (eq. 12, server_lr = 1) must equal the plain mean of the
  // client deltas — i.e. the encoder equals the mean of client encoders.
  const auto source = tiny_data();
  common::Rng rng(7);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  core::SpatlOptions opts;
  opts.salient_selection = false;
  opts.gradient_control = false;
  opts.server_lr = 1.0;
  core::SpatlAlgorithm spatl(env, tiny_config(), opts);

  // Drive one round directly (run_federated's final evaluation would sync
  // the aggregated encoder back into the clients and trivialize the check).
  spatl.run_round({0, 1, 2});
  const auto w_after =
      nn::flatten_values(spatl.global_model().encoder_params());

  std::vector<double> mean(w_after.size(), 0.0);
  for (std::size_t c = 0; c < 3; ++c) {
    const auto wc =
        nn::flatten_values(spatl.client_model(c).encoder_params());
    for (std::size_t j = 0; j < mean.size(); ++j) mean[j] += wc[j] / 3.0;
  }
  for (std::size_t j = 0; j < mean.size(); ++j) {
    ASSERT_NEAR(w_after[j], mean[j], 1e-4f) << "position " << j;
  }
}

TEST(Equivalence, ServerLrScalesTheAggregatedStep) {
  // w(eta) - w0 must equal eta * (w(1) - w0) for the one-round update.
  const auto source = tiny_data();
  auto run = [&](double server_lr) {
    common::Rng rng(9);
    fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
    core::SpatlOptions opts;
    opts.salient_selection = false;
    opts.gradient_control = false;
    opts.server_lr = server_lr;
    core::SpatlAlgorithm spatl(env, tiny_config(), opts);
    const auto w0 = nn::flatten_values(spatl.global_model().encoder_params());
    spatl.run_round({0, 1, 2});
    const auto w1 = nn::flatten_values(spatl.global_model().encoder_params());
    std::vector<float> delta(w0.size());
    for (std::size_t i = 0; i < w0.size(); ++i) delta[i] = w1[i] - w0[i];
    return delta;
  };
  const auto full = run(1.0);
  const auto half = run(0.5);
  for (std::size_t i = 0; i < full.size(); i += 13) {
    EXPECT_NEAR(half[i], 0.5f * full[i], 5e-4f + 0.01f * std::fabs(full[i]));
  }
}

TEST(Property, ProjectionSparsityIsMonotoneInBudget) {
  common::Rng rng(11);
  models::ModelConfig mc;
  mc.arch = "resnet20";
  mc.input_size = 8;
  mc.width_mult = 0.25;
  auto model = models::build_model(mc, rng);
  const std::vector<double> base(model.gates().size(), 0.1);
  double prev_mean = -1.0;
  for (double budget : {0.9, 0.7, 0.5, 0.3}) {
    const auto proj = prune::project_to_flops_budget(model, base, budget);
    double mean = 0.0;
    for (double s : proj) mean += s;
    mean /= double(proj.size());
    EXPECT_GE(mean, prev_mean);  // tighter budget -> at least as sparse
    prev_mean = mean;
  }
}

class UniformSparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(UniformSparsitySweep, GatedAccountingNeverExceedsDense) {
  const double sparsity = GetParam();
  common::Rng rng(13);
  models::ModelConfig mc;
  mc.arch = "vgg11";
  mc.input_size = 8;
  mc.width_mult = 0.25;
  auto model = models::build_model(mc, rng);
  prune::apply_uniform_sparsity(model, sparsity, prune::Criterion::kL2);
  const double dense = prune::dense_encoder_flops(model.layers());
  const double gated = prune::encoder_flops(model);
  EXPECT_LE(gated, dense + 1e-9);
  EXPECT_GT(gated, 0.0);
  const double dense_p =
      prune::dense_encoder_weight_params(model.layers());
  const double gated_p = prune::gated_encoder_weight_params(
      model.layers(), model.gate_keep_fractions());
  EXPECT_LE(gated_p, dense_p + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, UniformSparsitySweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.99));

TEST(Property, MaskedForwardEqualsDenseWhenAllKept) {
  common::Rng rng(17);
  models::ModelConfig mc;
  mc.arch = "resnet20";
  mc.input_size = 8;
  mc.width_mult = 0.25;
  auto model = models::build_model(mc, rng);
  nn::Tensor x = nn::Tensor::randn({2, 3, 8, 8}, rng);
  const auto dense = model.forward(x, false);
  prune::apply_uniform_sparsity(model, 0.0, prune::Criterion::kL2);
  const auto gated = model.forward(x, false);
  EXPECT_TRUE(tensor::allclose(dense, gated));
}

TEST(Property, PrunedChannelsProduceZeroActivations) {
  common::Rng rng(19);
  models::ModelConfig mc;
  mc.arch = "vgg11";
  mc.input_size = 8;
  mc.width_mult = 0.25;
  auto model = models::build_model(mc, rng);
  // Mask all but one channel of the first gate; the masked feature-map
  // planes after the gate must be exactly zero.
  auto* gate = model.gates()[0];
  std::vector<std::uint8_t> mask(gate->channels(), 0);
  mask[0] = 1;
  gate->set_mask(mask);
  nn::Tensor x = nn::Tensor::randn({1, 3, 8, 8}, rng);
  // Forward through the first four encoder children (conv, bn, gate, relu).
  nn::Tensor h = x;
  for (std::size_t i = 0; i < 4; ++i) {
    h = model.encoder().child(i).forward(h, false);
  }
  const std::size_t hw = h.dim(2) * h.dim(3);
  for (std::size_t c = 1; c < h.dim(1); ++c) {
    for (std::size_t p = 0; p < hw; ++p) {
      ASSERT_EQ(h[c * hw + p], 0.0f);
    }
  }
}

TEST(Property, PpoFinetuneWithConstantRewardLeavesActionsUnchanged) {
  // Constant rewards carry zero advantage after normalization, so the
  // policy gradient vanishes; in finetune mode the critic's update cannot
  // leak into the actor (separate heads, frozen trunk), so deterministic
  // actions are bit-identical before and after the update.
  models::ModelConfig mc;
  mc.arch = "resnet20";
  mc.input_size = 8;
  mc.width_mult = 0.25;
  common::Rng rng(23);
  auto model = models::build_model(mc, rng);
  const auto g = graph::build_compute_graph(model);

  rl::PpoAgent agent(graph::kNumNodeFeatures, rl::PpoConfig{}, 29);
  agent.set_finetune(true);
  const auto before = agent.act(g, /*explore=*/false);
  for (int i = 0; i < 6; ++i) {
    agent.act(g, /*explore=*/true);
    agent.observe_reward(0.5);
  }
  agent.update();
  const auto after = agent.act(g, /*explore=*/false);
  EXPECT_EQ(before, after);
}

TEST(Property, CommLedgerIsPureAccumulation) {
  fl::CommLedger ledger;
  ledger.add_uplink_floats(10);
  ledger.add_downlink_floats(5);
  ledger.add_uplink_indices(3);
  EXPECT_DOUBLE_EQ(ledger.uplink_bytes(), 52.0);
  EXPECT_DOUBLE_EQ(ledger.downlink_bytes(), 20.0);
  EXPECT_DOUBLE_EQ(ledger.total_bytes(), 72.0);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_bytes(), 0.0);
}

TEST(Property, DatasetGatherMatchesSubset) {
  const auto d = tiny_data();
  std::vector<std::size_t> idx = {5, 17, 42, 7};
  nn::Tensor batch;
  std::vector<int> labels;
  d.gather(idx, 1, 2, batch, labels);  // rows 17 and 42
  const auto sub = d.subset({17, 42});
  EXPECT_TRUE(tensor::allclose(batch, sub.images()));
  EXPECT_EQ(labels, sub.labels());
}

}  // namespace
}  // namespace spatl
