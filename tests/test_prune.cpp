#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "prune/flops.hpp"
#include "prune/pipelines.hpp"
#include "prune/saliency.hpp"

namespace spatl::prune {
namespace {

models::SplitModel tiny(const std::string& arch, std::uint64_t seed = 5) {
  models::ModelConfig cfg;
  cfg.arch = arch;
  cfg.input_size = 8;
  cfg.width_mult = 0.25;
  if (arch == "cnn2") cfg.in_channels = 1;
  common::Rng rng(seed);
  return models::build_model(cfg, rng);
}

TEST(Flops, ConvFormulaMatchesHandComputation) {
  models::LayerInfo l;
  l.kind = models::LayerKind::kConv;
  l.in_ch = 3;
  l.out_ch = 8;
  l.kernel = 3;
  l.stride = 1;
  l.in_h = l.in_w = 16;
  l.out_h = l.out_w = 16;
  // 2 * 9 * 3 * 8 * 256 = 110592
  EXPECT_DOUBLE_EQ(dense_layer_flops(l), 110592.0);
}

TEST(Flops, LinearAndPoolFormulas) {
  models::LayerInfo lin;
  lin.kind = models::LayerKind::kLinear;
  lin.in_ch = 64;
  lin.out_ch = 10;
  EXPECT_DOUBLE_EQ(dense_layer_flops(lin), 2.0 * 64 * 10);

  models::LayerInfo gap;
  gap.kind = models::LayerKind::kGlobalAvgPool;
  gap.in_ch = 16;
  gap.in_h = gap.in_w = 4;
  EXPECT_DOUBLE_EQ(dense_layer_flops(gap), 16.0 * 16.0);
}

TEST(Flops, GatingScalesConvBilinearly) {
  models::LayerInfo l;
  l.kind = models::LayerKind::kConv;
  l.in_ch = 8;
  l.out_ch = 8;
  l.kernel = 3;
  l.in_h = l.in_w = l.out_h = l.out_w = 4;
  l.in_gate = 0;
  l.out_gate = 1;
  const double dense = gated_encoder_flops({l}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(gated_encoder_flops({l}, {0.5, 1.0}), dense * 0.5);
  EXPECT_DOUBLE_EQ(gated_encoder_flops({l}, {0.5, 0.5}), dense * 0.25);
}

TEST(Flops, ModelDenseEqualsGatedWithFullKeep) {
  auto m = tiny("resnet20");
  const double dense = dense_encoder_flops(m.layers());
  EXPECT_GT(dense, 0.0);
  EXPECT_DOUBLE_EQ(encoder_flops(m), dense);  // all gates open
}

TEST(Flops, MaskingReducesModelFlops) {
  auto m = tiny("vgg11");
  apply_uniform_sparsity(m, 0.5, Criterion::kL2);
  const double ratio = encoder_flops(m) / dense_encoder_flops(m.layers());
  EXPECT_LT(ratio, 0.7);
  EXPECT_GT(ratio, 0.05);
}

TEST(Saliency, L1L2HandValues) {
  nn::Tensor w({2, 2}, std::vector<float>{3, -4, 1, 0});
  const auto l1 = channel_scores(w, Criterion::kL1);
  EXPECT_DOUBLE_EQ(l1[0], 7.0);
  EXPECT_DOUBLE_EQ(l1[1], 1.0);
  const auto l2 = channel_scores(w, Criterion::kL2);
  EXPECT_NEAR(l2[0], 5.0, 1e-6);
  EXPECT_NEAR(l2[1], 1.0, 1e-6);
}

TEST(Saliency, FpgmScoresRedundantFiltersLow) {
  // Three filters: two identical, one distinct. FPGM prunes filters close
  // to the geometric median, i.e. the duplicated pair scores lower than the
  // outlier.
  nn::Tensor w({3, 2}, std::vector<float>{1, 1,  //
                                          1, 1,  //
                                          9, 9});
  const auto s = channel_scores(w, Criterion::kGeometricMedian);
  EXPECT_GT(s[2], s[0]);
  EXPECT_NEAR(s[0], s[1], 1e-9);
}

TEST(Saliency, RandomIsDeterministicPerSeed) {
  nn::Tensor w({4, 3});
  const auto a = channel_scores(w, Criterion::kRandom, nullptr, 7);
  const auto b = channel_scores(w, Criterion::kRandom, nullptr, 7);
  const auto c = channel_scores(w, Criterion::kRandom, nullptr, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Saliency, UpdateMagnitudeNeedsReference) {
  nn::Tensor w({2, 2}, std::vector<float>{1, 1, 5, 5});
  EXPECT_THROW(channel_scores(w, Criterion::kUpdateMagnitude),
               std::invalid_argument);
  nn::Tensor ref({2, 2}, std::vector<float>{1, 1, 1, 1});
  const auto s = channel_scores(w, Criterion::kUpdateMagnitude, &ref);
  EXPECT_NEAR(s[0], 0.0, 1e-9);
  EXPECT_NEAR(s[1], std::sqrt(32.0), 1e-5);
}

TEST(Saliency, TopKMaskKeepsHighest) {
  const auto mask = top_k_mask({0.1, 0.9, 0.5, 0.7}, 2);
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{0, 1, 0, 1}));
  // keep_count larger than size keeps everything.
  EXPECT_EQ(top_k_mask({1.0, 2.0}, 5),
            (std::vector<std::uint8_t>{1, 1}));
}

TEST(ApplySparsities, AtLeastOneChannelSurvives) {
  auto m = tiny("cnn2");
  apply_uniform_sparsity(m, 0.999, Criterion::kL2);
  for (const auto* gate : m.gates()) {
    std::size_t kept = 0;
    for (auto v : gate->mask()) kept += v;
    EXPECT_GE(kept, 1u);
  }
}

TEST(ApplySparsities, RejectsWrongVectorLength) {
  auto m = tiny("cnn2");
  EXPECT_THROW(apply_sparsities(m, {0.5}, Criterion::kL2),
               std::invalid_argument);
}

TEST(ProjectToBudget, AlreadyFeasibleIsUnchanged) {
  auto m = tiny("resnet20");
  std::vector<double> s(m.gates().size(), 0.9);
  const auto out = project_to_flops_budget(m, s, 0.99);
  EXPECT_EQ(out, s);
}

class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, ProjectionMeetsBudgetApproximately) {
  const double budget = GetParam();
  auto m = tiny("vgg11");
  std::vector<double> s(m.gates().size(), 0.05);  // far too dense
  const auto projected = project_to_flops_budget(m, s, budget);
  apply_sparsities(m, projected, Criterion::kL2);
  const double ratio = encoder_flops(m) / dense_encoder_flops(m.layers());
  // ceil() quantization of tiny channel counts can overshoot a little.
  EXPECT_LT(ratio, budget + 0.15);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(0.8, 0.6, 0.4));

TEST(OverallSparsity, CountsMaskedChannels) {
  auto m = tiny("cnn2");
  EXPECT_DOUBLE_EQ(overall_sparsity(m), 0.0);
  apply_uniform_sparsity(m, 0.5, Criterion::kL2);
  EXPECT_GT(overall_sparsity(m), 0.2);
  EXPECT_LT(overall_sparsity(m), 0.8);
}

TEST(Pipelines, OneShotPruneReportsConsistentMetrics) {
  auto m = tiny("cnn2");
  data::SyntheticConfig dc;
  dc.num_samples = 120;
  dc.channels = 1;
  dc.image_size = 8;
  dc.num_classes = 10;
  const auto ds = data::make_synthetic_with_labels(dc, [] {
    std::vector<int> l(120);
    for (int i = 0; i < 120; ++i) l[std::size_t(i)] = i % 10;
    return l;
  }());
  common::Rng rng(3);
  data::TrainOptions opts;
  opts.lr = 0.05;
  const auto r = one_shot_prune_and_finetune(m, ds, ds, Criterion::kL2, 0.4,
                                             /*finetune_epochs=*/2, opts, rng);
  EXPECT_LT(r.flops_ratio, 1.0);
  EXPECT_GT(r.sparsity, 0.0);
  EXPECT_GE(r.accuracy, 0.0);
}

TEST(Pipelines, SfpZeroesLowNormFiltersDuringTraining) {
  auto m = tiny("cnn2");
  data::SyntheticConfig dc;
  dc.num_samples = 100;
  dc.channels = 1;
  dc.image_size = 8;
  dc.num_classes = 10;
  const auto ds = data::make_synthetic_with_labels(dc, [] {
    std::vector<int> l(100);
    for (int i = 0; i < 100; ++i) l[std::size_t(i)] = i % 10;
    return l;
  }());
  common::Rng rng(5);
  data::TrainOptions opts;
  opts.lr = 0.05;
  const auto r = sfp_train(m, ds, ds, 0.5, /*epochs=*/2, opts, rng);
  EXPECT_LT(r.flops_ratio, 1.0);
  EXPECT_GT(r.sparsity, 0.3);
}

}  // namespace
}  // namespace spatl::prune
