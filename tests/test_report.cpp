// spatl_report internals: the strict JSON reader, the telemetry folder,
// the deterministic renderers, and the tolerance-gated diff. The binary's
// embedded known-answer check (self_test) runs here too, so ctest fails if
// either side of the --self-test contract drifts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "report/json.hpp"
#include "report/report.hpp"

namespace spatl::report {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(parse_json(text, &v, &err)) << text << " — " << err;
  return v;
}

std::string parse_err(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json(text, &v, &err)) << text;
  return err;
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(ReportJson, ParsesScalarsExactly) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").number, -1250.0);
  EXPECT_DOUBLE_EQ(parse_ok("0.001").number, 0.001);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
}

TEST(ReportJson, DecodesEscapesIncludingUnicode) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t")").string, "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9")").string, "A\xc3\xa9");
  // Surrogate pair → 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").string, "\xf0\x9f\x98\x80");
  // The writer's control-character form round-trips.
  EXPECT_EQ(parse_ok(R"("\u0001")").string, std::string("\x01", 1));
}

TEST(ReportJson, ObjectsPreserveInsertionOrder) {
  const JsonValue v = parse_ok(R"({"z":1,"a":{"nested":[1,2,3]},"m":true})");
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_EQ(v.members[2].first, "m");
  const JsonValue* nested = v.find("a");
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(nested->find("nested"), nullptr);
  EXPECT_EQ(nested->find("nested")->items.size(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.num("z"), 1.0);
  EXPECT_EQ(v.u64("z"), 1u);
  EXPECT_TRUE(v.flag("m"));
  EXPECT_EQ(v.str("absent", "fallback"), "fallback");
}

TEST(ReportJson, RejectsMalformedInputWithPosition) {
  EXPECT_NE(parse_err("{\"a\":1,}").find("expected object key"),
            std::string::npos);
  EXPECT_NE(parse_err("[1,2""").find("unterminated"), std::string::npos);
  EXPECT_NE(parse_err("{} trailing").find("trailing"), std::string::npos);
  EXPECT_NE(parse_err("\"\\x\"").find("invalid escape"), std::string::npos);
  EXPECT_NE(parse_err("\"\x01\"").find("control"), std::string::npos);
  EXPECT_NE(parse_err("\"\\ud800.\"").find("surrogate"), std::string::npos);
  EXPECT_NE(parse_err("nul"), "");
  // Recursion depth is bounded, not stack-bounded.
  EXPECT_NE(parse_err(std::string(100, '[') + std::string(100, ']'))
                .find("deep"),
            std::string::npos);
}

TEST(ReportJson, JsonlReportsTheFailingLine) {
  std::vector<JsonValue> records;
  std::string err;
  EXPECT_TRUE(parse_jsonl("{\"a\":1}\n\n  \n{\"b\":2}\r\n", &records, &err));
  EXPECT_EQ(records.size(), 2u);
  records.clear();
  EXPECT_FALSE(parse_jsonl("{\"a\":1}\n{bad}\n", &records, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Folding + rendering + diff

const char kStream[] =
    "{\"type\":\"round\",\"algo\":\"fedavg\",\"round\":1,\"selected\":4,"
    "\"skipped\":false,\"comm\":{\"uplink_bytes\":10,\"downlink_bytes\":20,"
    "\"retransmitted_bytes\":0,\"cumulative_bytes\":30},"
    "\"eval\":{\"avg_accuracy\":0.4,\"avg_loss\":1.5}}\n"
    "{\"type\":\"round\",\"algo\":\"fedavg\",\"round\":2,\"selected\":4,"
    "\"skipped\":true,\"comm\":{\"uplink_bytes\":10,\"downlink_bytes\":20,"
    "\"retransmitted_bytes\":0,\"cumulative_bytes\":60}}\n"
    "{\"type\":\"mystery\",\"round\":2}\n";

TEST(ReportFold, CountsUnknownRecordTypes) {
  std::vector<JsonValue> records;
  std::string err;
  ASSERT_TRUE(parse_jsonl(kStream, &records, &err)) << err;
  const HealthReport r = build_report(records, nullptr);
  EXPECT_EQ(r.algo, "fedavg");
  EXPECT_EQ(r.round_records, 2u);
  EXPECT_EQ(r.rounds_skipped, 1u);
  EXPECT_EQ(r.selected, 8u);
  EXPECT_TRUE(r.has_eval);
  EXPECT_DOUBLE_EQ(r.final_accuracy, 0.4);
  EXPECT_DOUBLE_EQ(r.cumulative_bytes, 60.0);
  EXPECT_EQ(r.unknown_records, 1u);
}

TEST(ReportRender, JsonIsDeterministicAndReparses) {
  std::vector<JsonValue> records;
  std::string err;
  ASSERT_TRUE(parse_jsonl(kStream, &records, &err)) << err;
  const HealthReport r = build_report(records, nullptr);
  const std::string a = render_json(r);
  const std::string b = render_json(build_report(records, nullptr));
  EXPECT_EQ(a, b);
  JsonValue round_trip;
  ASSERT_TRUE(parse_json(a, &round_trip, &err)) << err;
  EXPECT_EQ(round_trip.str("schema"), "spatl-report-v1");
  EXPECT_EQ(round_trip.num("unknown_records"), 1.0);
  const std::string md = render_markdown(r);
  EXPECT_NE(md.find("# SPATL run health report"), std::string::npos);
  EXPECT_NE(md.find("schema drift"), std::string::npos);  // unknown warning
}

TEST(ReportDiff, EachGateTripsIndependently) {
  std::vector<JsonValue> records;
  std::string err;
  ASSERT_TRUE(parse_jsonl(kStream, &records, &err)) << err;
  HealthReport current = build_report(records, nullptr);
  current.phases["fl/train"].p95_ms = 100.0;
  JsonValue baseline;
  ASSERT_TRUE(parse_json(render_json(current), &baseline, &err)) << err;

  DiffTolerances tol;  // defaults: 0.01 acc, 5% bytes, 50% p95
  EXPECT_TRUE(diff_reports(baseline, current, tol).empty());

  HealthReport worse = current;
  worse.final_accuracy -= 0.02;
  ASSERT_EQ(diff_reports(baseline, worse, tol).size(), 1u);
  EXPECT_NE(diff_reports(baseline, worse, tol)[0].what.find("accuracy"),
            std::string::npos);

  worse = current;
  worse.cumulative_bytes *= 1.10;
  EXPECT_EQ(diff_reports(baseline, worse, tol).size(), 1u);

  worse = current;
  worse.phases["fl/train"].p95_ms = 200.0;
  EXPECT_EQ(diff_reports(baseline, worse, tol).size(), 1u);

  worse = current;
  worse.recoveries_failed += 1;
  EXPECT_EQ(diff_reports(baseline, worse, tol).size(), 1u);

  worse = current;
  worse.unknown_records += 1;
  EXPECT_EQ(diff_reports(baseline, worse, tol).size(), 1u);

  // Looser tolerances absorb the same regressions.
  tol.accuracy_drop = 0.5;
  tol.bytes_ratio = 10.0;
  tol.p95_ratio = 10.0;
  worse = current;
  worse.final_accuracy -= 0.02;
  worse.cumulative_bytes *= 1.10;
  worse.phases["fl/train"].p95_ms = 200.0;
  EXPECT_TRUE(diff_reports(baseline, worse, tol).empty());
}

TEST(ReportSelfTest, EmbeddedKnownAnswerCheckPasses) {
  EXPECT_EQ(self_test(), 0);
}

}  // namespace
}  // namespace spatl::report
