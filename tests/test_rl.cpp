#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "rl/ppo.hpp"
#include "rl/pruning_env.hpp"

namespace spatl::rl {
namespace {

models::SplitModel tiny_model(std::uint64_t seed = 5) {
  models::ModelConfig cfg;
  cfg.arch = "resnet20";
  cfg.input_size = 8;
  cfg.width_mult = 0.25;
  common::Rng rng(seed);
  return models::build_model(cfg, rng);
}

graph::ComputeGraph tiny_graph() {
  auto m = tiny_model();
  return graph::build_compute_graph(m);
}

TEST(PolicyNetwork, ForwardProducesBoundedMeansAndFiniteValue) {
  common::Rng rng(1);
  PolicyNetwork net(graph::kNumNodeFeatures, 16, 16, rng);
  const auto g = tiny_graph();
  const auto out = net.forward(g);
  ASSERT_EQ(out.action_means.size(), g.action_nodes.size());
  for (double m : out.action_means) {
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 1.0);
  }
  EXPECT_FALSE(std::isnan(out.value));
}

TEST(PolicyNetwork, GradientMatchesFiniteDifference) {
  common::Rng rng(2);
  PolicyNetwork net(graph::kNumNodeFeatures, 8, 8, rng);
  const auto g = tiny_graph();

  // Scalar loss: sum(mu) + value. Analytic gradient via backward, numeric
  // via parameter perturbation.
  auto loss = [&]() {
    const auto out = net.forward(g);
    double acc = out.value;
    for (double m : out.action_means) acc += m;
    return acc;
  };
  const auto base_out = net.forward(g);
  net.zero_grad();
  net.forward(g);
  net.backward(std::vector<double>(base_out.action_means.size(), 1.0), 1.0);

  double max_rel = 0.0;
  // Small step: larger eps straddles GNN ReLU kinks and reports spurious
  // error even though the analytic gradient is exact.
  const float eps = 2e-3f;
  for (auto& p : net.all_params()) {
    nn::Tensor& w = *p.value;
    const nn::Tensor& grad = *p.grad;
    const std::size_t stride = std::max<std::size_t>(1, w.numel() / 6);
    for (std::size_t i = 0; i < w.numel(); i += stride) {
      const float orig = w[i];
      auto probe = [&](float delta) {
        w[i] = orig + delta;
        const double l = loss();
        w[i] = orig;
        return l;
      };
      // Two-scale consistency: skip coordinates straddling a ReLU kink.
      const double d1 = (probe(eps) - probe(-eps)) / (2.0 * eps);
      const double d2 = (probe(eps / 2) - probe(-eps / 2)) / double(eps);
      const double scale = std::max({1.0, std::fabs(d1), std::fabs(d2)});
      if (std::fabs(d1 - d2) > 0.02 * scale) continue;
      const double analytic = double(grad[i]);
      const double denom = std::max({1.0, std::fabs(d2),
                                     std::fabs(analytic)});
      max_rel = std::max(max_rel, std::fabs(d2 - analytic) / denom);
    }
  }
  EXPECT_LT(max_rel, 3e-2);
}

TEST(PolicyNetwork, HeadParamsAreStrictSubset) {
  common::Rng rng(3);
  PolicyNetwork net(graph::kNumNodeFeatures, 8, 8, rng);
  const auto all = net.all_params();
  const auto heads = net.head_params();
  EXPECT_LT(heads.size(), all.size());
  for (const auto& h : heads) {
    EXPECT_TRUE(h.name.rfind("actor.", 0) == 0 ||
                h.name.rfind("critic.", 0) == 0)
        << h.name;
  }
}

TEST(PolicyNetwork, CloneReproducesOutputs) {
  common::Rng rng(4);
  PolicyNetwork net(graph::kNumNodeFeatures, 8, 8, rng);
  common::Rng rng2(999);
  PolicyNetwork copy = net.clone(rng2);
  const auto g = tiny_graph();
  const auto a = net.forward(g);
  const auto b = copy.forward(g);
  ASSERT_EQ(a.action_means.size(), b.action_means.size());
  for (std::size_t i = 0; i < a.action_means.size(); ++i) {
    EXPECT_NEAR(a.action_means[i], b.action_means[i], 1e-6);
  }
  EXPECT_NEAR(a.value, b.value, 1e-5);
}

TEST(PpoAgent, ActExploreRecordsPendingTransition) {
  PpoConfig cfg;
  PpoAgent agent(graph::kNumNodeFeatures, cfg, 7);
  const auto g = tiny_graph();
  EXPECT_THROW(agent.observe_reward(0.5), std::logic_error);
  agent.act(g, /*explore=*/true);
  agent.observe_reward(0.5);
  EXPECT_EQ(agent.buffer_size(), 1u);
  agent.update();
  EXPECT_EQ(agent.buffer_size(), 0u);
}

TEST(PpoAgent, DeterministicActionEqualsPolicyMean) {
  PpoConfig cfg;
  PpoAgent agent(graph::kNumNodeFeatures, cfg, 8);
  const auto g = tiny_graph();
  const auto a1 = agent.act(g, /*explore=*/false);
  const auto a2 = agent.act(g, /*explore=*/false);
  EXPECT_EQ(a1, a2);  // no sampling noise
}

TEST(PpoAgent, LearnsToMoveActionsTowardRewardedRegion) {
  // Synthetic bandit: reward = 1 - mean |a - target|, with the target
  // placed far from the initial policy so there is a real gradient to
  // follow (near the optimum the z-scored advantages are pure noise).
  PpoConfig cfg;
  cfg.lr = 2e-2;
  cfg.action_std = 0.3;
  PpoAgent agent(graph::kNumNodeFeatures, cfg, 9);
  const auto g = tiny_graph();

  auto mean_action = [&]() {
    const auto a = agent.act(g, /*explore=*/false);
    double s = 0.0;
    for (double v : a) s += v;
    return s / double(a.size());
  };

  const double target = mean_action() > 0.5 ? 0.1 : 0.9;
  const double before = std::fabs(mean_action() - target);
  ASSERT_GT(before, 0.3);
  for (int round = 0; round < 30; ++round) {
    for (int e = 0; e < 8; ++e) {
      const auto actions = agent.act(g, /*explore=*/true);
      double dist = 0.0;
      for (double a : actions) dist += std::fabs(a - target);
      agent.observe_reward(1.0 - dist / double(actions.size()));
    }
    agent.update();
  }
  const double after = std::fabs(mean_action() - target);
  EXPECT_LT(after, before - 0.1) << "policy did not improve";
}

TEST(PpoAgent, FinetuneFreezesGnnTrunk) {
  PpoConfig cfg;
  cfg.lr = 5e-2;
  PpoAgent agent(graph::kNumNodeFeatures, cfg, 10);
  agent.set_finetune(true);
  const auto g = tiny_graph();
  const auto trunk_before =
      nn::flatten_values(agent.network().all_params());
  for (int e = 0; e < 4; ++e) {
    agent.act(g, true);
    agent.observe_reward(e % 2 == 0 ? 1.0 : 0.0);
  }
  agent.update();
  const auto trunk_after = nn::flatten_values(agent.network().all_params());
  // Heads moved, GNN trunk identical: compare the leading (gnn.*) segment.
  const auto heads = agent.network().head_params();
  const std::size_t head_count = nn::param_count(heads);
  const std::size_t trunk_count = trunk_before.size() - head_count;
  bool trunk_same = true;
  for (std::size_t i = 0; i < trunk_count; ++i) {
    if (trunk_before[i] != trunk_after[i]) trunk_same = false;
  }
  bool heads_moved = false;
  for (std::size_t i = trunk_count; i < trunk_before.size(); ++i) {
    if (trunk_before[i] != trunk_after[i]) heads_moved = true;
  }
  EXPECT_TRUE(trunk_same);
  EXPECT_TRUE(heads_moved);
}

TEST(PruningEnv, StepMeetsBudgetAndReportsReward) {
  auto m = tiny_model();
  data::SyntheticConfig dc;
  dc.num_samples = 80;
  dc.image_size = 8;
  const auto val = data::make_synth_cifar(dc);
  PruningEnvConfig cfg;
  cfg.flops_budget = 0.6;
  PruningEnv env(m, val, cfg);
  const auto g = env.reset();
  EXPECT_EQ(g.action_nodes.size(), m.gates().size());
  const auto r = env.step(std::vector<double>(m.gates().size(), 0.1));
  EXPECT_LE(r.flops_ratio, 0.75);  // ceil quantization slack
  EXPECT_GE(r.reward, 0.0);
  EXPECT_LE(r.reward, 1.0);
}

TEST(PruningEnv, TrainOnPruningProducesHistory) {
  auto m = tiny_model();
  data::SyntheticConfig dc;
  dc.num_samples = 60;
  dc.image_size = 8;
  const auto val = data::make_synth_cifar(dc);
  PruningEnv env(m, val, {});
  PpoConfig cfg;
  PpoAgent agent(graph::kNumNodeFeatures, cfg, 11);
  const auto h = train_on_pruning(agent, env, /*rounds=*/3,
                                  /*episodes_per_round=*/2);
  ASSERT_EQ(h.rewards.size(), 3u);
  ASSERT_EQ(h.best_so_far.size(), 3u);
  EXPECT_GE(h.best_reward, h.rewards[0] - 1e-9);
  // best_so_far is nondecreasing.
  for (std::size_t i = 1; i < h.best_so_far.size(); ++i) {
    EXPECT_GE(h.best_so_far[i], h.best_so_far[i - 1]);
  }
  // Model is left dense.
  for (double k : m.gate_keep_fractions()) EXPECT_DOUBLE_EQ(k, 1.0);
}

}  // namespace
}  // namespace spatl::rl
