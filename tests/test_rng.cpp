#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"

namespace spatl::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.uniform_index(5)];
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Rng, GammaIsPositiveAndHasRightMean) {
  Rng rng(17);
  for (double shape : {0.3, 0.5, 1.0, 2.5}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double g = rng.gamma(shape);
      ASSERT_GT(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum / n, shape, 0.1 * std::max(1.0, shape));
  }
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(19);
  for (double alpha : {0.1, 0.5, 5.0}) {
    const auto p = rng.dirichlet(alpha, 10);
    ASSERT_EQ(p.size(), 10u);
    const double total = std::accumulate(p.begin(), p.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double v : p) EXPECT_GE(v, 0.0);
  }
}

TEST(Rng, DirichletConcentrationControlsSkew) {
  Rng rng(23);
  // Low alpha -> concentrated draws (high max); high alpha -> near-uniform.
  double max_low = 0.0, max_high = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto lo = rng.dirichlet(0.1, 10);
    const auto hi = rng.dirichlet(50.0, 10);
    max_low += *std::max_element(lo.begin(), lo.end());
    max_high += *std::max_element(hi.begin(), hi.end());
  }
  EXPECT_GT(max_low / trials, 0.5);
  EXPECT_LT(max_high / trials, 0.25);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(50, 20);
  ASSERT_EQ(s.size(), 20u);
  auto sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (auto i : s) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithoutReplacementClampsOversizedRequest) {
  Rng rng(37);
  const auto s = rng.sample_without_replacement(5, 12);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(41);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 4000; ++i) ++hits[rng.categorical(w)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(double(hits[2]) / double(hits[0]), 3.0, 0.5);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // The child should not replay the parent's sequence.
  Rng b(55);
  b.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace spatl::common
