#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"
#include "fl/robust.hpp"
#include "fl/runner.hpp"

namespace spatl::fl {
namespace {

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

std::vector<float> global_weights(FederatedAlgorithm& algo) {
  return nn::flatten_values(algo.global_model().all_params());
}

std::unique_ptr<RobustAggregator> make_kind(AggregatorKind kind,
                                            double trim = 0.2,
                                            std::size_t krum_f = 0,
                                            std::size_t multi_krum = 1,
                                            double clip = 0.0) {
  ResilienceConfig rc;
  rc.aggregator = kind;
  rc.trim_fraction = trim;
  rc.krum_f = krum_f;
  rc.multi_krum = multi_krum;
  rc.clip_norm = clip;
  return make_robust_aggregator(rc);
}

RobustUpdate dense(std::size_t client, double weight,
                   const std::vector<float>& values) {
  RobustUpdate u;
  u.client = client;
  u.weight = weight;
  u.values = &values;
  return u;
}

RobustUpdate masked(std::size_t client, double weight,
                    const std::vector<float>& values,
                    const std::vector<std::uint8_t>& mask) {
  RobustUpdate u = dense(client, weight, values);
  u.mask = &mask;
  return u;
}

// ---------------------------------------------------- names and factory ---

TEST(RobustAggregator, KindNamesRoundTrip) {
  for (const auto kind :
       {AggregatorKind::kWeightedMean, AggregatorKind::kCoordinateMedian,
        AggregatorKind::kTrimmedMean, AggregatorKind::kKrum,
        AggregatorKind::kNormClippedMean}) {
    EXPECT_EQ(parse_aggregator_kind(aggregator_kind_name(kind)), kind);
    EXPECT_EQ(make_kind(kind)->kind(), kind);
  }
  EXPECT_THROW(parse_aggregator_kind("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_aggregator_kind(""), std::invalid_argument);
}

TEST(RobustAggregator, AttackKindNamesRoundTrip) {
  for (const auto kind :
       {AttackKind::kSignFlip, AttackKind::kScale, AttackKind::kGaussianNoise,
        AttackKind::kFixedDirection}) {
    EXPECT_EQ(parse_attack_kind(attack_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_attack_kind("bogus"), std::invalid_argument);
}

// ------------------------------------------------- hand-computed exactness --

TEST(RobustAggregator, WeightedMeanMatchesClosedForm) {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {3.0f, 6.0f};
  const auto out = make_kind(AggregatorKind::kWeightedMean)
                       ->aggregate({dense(0, 1.0, a), dense(1, 3.0, b)}, 2);
  ASSERT_EQ(out.value.size(), 2u);
  EXPECT_FLOAT_EQ(out.value[0], 2.5f);  // (1*1 + 3*3) / 4
  EXPECT_FLOAT_EQ(out.value[1], 5.0f);  // (1*2 + 3*6) / 4
  EXPECT_EQ(out.defined, (std::vector<std::uint8_t>{1, 1}));
  EXPECT_TRUE(out.excluded.empty());
  EXPECT_EQ(out.clipped, 0u);
}

TEST(RobustAggregator, CoordinateMedianOddAndEvenCounts) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {5.0f};
  const std::vector<float> c = {100.0f};
  const auto median = make_kind(AggregatorKind::kCoordinateMedian);
  // Odd count: the middle order statistic; weights are ignored.
  auto out = median->aggregate(
      {dense(0, 1.0, a), dense(1, 9.0, b), dense(2, 1.0, c)}, 1);
  EXPECT_FLOAT_EQ(out.value[0], 5.0f);
  // Even count: average of the two middle order statistics.
  const std::vector<float> d = {2.0f};
  out = median->aggregate(
      {dense(0, 1.0, a), dense(1, 1.0, d), dense(2, 1.0, b),
       dense(3, 1.0, c)},
      1);
  EXPECT_FLOAT_EQ(out.value[0], 3.5f);  // (2 + 5) / 2
}

TEST(RobustAggregator, TrimmedMeanDropsTailsAndKeepsWeights) {
  const std::vector<float> v1 = {1.0f};
  const std::vector<float> v2 = {2.0f};
  const std::vector<float> v3 = {3.0f};
  const std::vector<float> v4 = {100.0f};
  // trim 0.25 over 4 samples cuts 1 order statistic per side.
  auto out = make_kind(AggregatorKind::kTrimmedMean, 0.25)
                 ->aggregate({dense(0, 1.0, v1), dense(1, 1.0, v2),
                              dense(2, 3.0, v3), dense(3, 1.0, v4)},
                             1);
  EXPECT_FLOAT_EQ(out.value[0], 2.75f);  // (1*2 + 3*3) / 4
  // Degenerate trim that would drop everything keeps the middle element.
  out = make_kind(AggregatorKind::kTrimmedMean, 0.5)
            ->aggregate({dense(0, 1.0, v1), dense(1, 1.0, v3)}, 1);
  EXPECT_FLOAT_EQ(out.value[0], 2.0f);
}

TEST(RobustAggregator, NormClippedMeanClipsAboutOriginAndReference) {
  const std::vector<float> big = {3.0f, 4.0f};     // norm 5, clipped to 0.5
  const std::vector<float> small = {0.0f, 0.25f};  // norm 0.25, untouched
  auto out = make_kind(AggregatorKind::kNormClippedMean, 0.2, 0, 1, 0.5)
                 ->aggregate({dense(0, 1.0, big), dense(1, 1.0, small)}, 2);
  EXPECT_EQ(out.clipped, 1u);
  EXPECT_NEAR(out.value[0], 0.15f, 1e-6);   // mean({0.3, 0.4}, {0, 0.25})
  EXPECT_NEAR(out.value[1], 0.325f, 1e-6);

  // With a reference, the deviation (not the absolute vector) is clipped.
  const std::vector<float> ref = {1.0f, 0.0f};
  const std::vector<float> update = {1.0f, 2.0f};  // deviation {0, 2}, norm 2
  out = make_kind(AggregatorKind::kNormClippedMean, 0.2, 0, 1, 1.0)
            ->aggregate({dense(0, 1.0, update)}, 2, &ref);
  EXPECT_EQ(out.clipped, 1u);
  EXPECT_NEAR(out.value[0], 1.0f, 1e-6);
  EXPECT_NEAR(out.value[1], 1.0f, 1e-6);  // ref + 1.0 * unit deviation
}

TEST(RobustAggregator, NormClipAutoThresholdUsesMedianNorm) {
  const std::vector<float> v1 = {1.0f};
  const std::vector<float> v2 = {2.0f};
  const std::vector<float> v3 = {100.0f};
  // clip_norm = 0 auto-tunes to the median norm (2), so only the boosted
  // update is rescaled and the honest majority pins the threshold.
  const auto out =
      make_kind(AggregatorKind::kNormClippedMean, 0.2, 0, 1, 0.0)
          ->aggregate(
              {dense(0, 1.0, v1), dense(1, 1.0, v2), dense(2, 1.0, v3)}, 1);
  EXPECT_EQ(out.clipped, 1u);
  EXPECT_NEAR(out.value[0], 5.0f / 3.0f, 1e-6);  // mean(1, 2, 100 -> 2)
}

// ------------------------------------------------------ breakdown points --

TEST(RobustAggregator, MeanBreaksButMedianTrimmedKrumHold) {
  const std::vector<float> h1 = {0.9f, 1.1f};
  const std::vector<float> h2 = {1.0f, 1.0f};
  const std::vector<float> h3 = {1.1f, 0.9f};
  const std::vector<float> h4 = {1.0f, 1.05f};
  const std::vector<float> adv = {1.0e6f, -1.0e6f};
  const std::vector<RobustUpdate> ups = {dense(0, 1.0, h1), dense(1, 1.0, h2),
                                         dense(2, 1.0, h3), dense(3, 1.0, h4),
                                         dense(4, 1.0, adv)};
  // One unbounded attacker out of five drags the mean arbitrarily far...
  const auto mean = make_kind(AggregatorKind::kWeightedMean)->aggregate(ups, 2);
  EXPECT_GT(std::abs(mean.value[0]), 1.0e5f);
  // ...while the robust estimators stay inside the honest range.
  for (const auto kind : {AggregatorKind::kCoordinateMedian,
                          AggregatorKind::kTrimmedMean}) {
    const auto out = make_kind(kind, 0.2)->aggregate(ups, 2);
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_GE(out.value[j], 0.9f) << aggregator_kind_name(kind);
      EXPECT_LE(out.value[j], 1.1f) << aggregator_kind_name(kind);
    }
  }
  const auto krum = make_kind(AggregatorKind::kKrum, 0.2, 1, 1)
                        ->aggregate(ups, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_GE(krum.value[j], 0.9f);
    EXPECT_LE(krum.value[j], 1.1f);
  }
  // Krum names the non-selected clients; the attacker must be among them.
  EXPECT_EQ(krum.excluded.size(), 4u);
  EXPECT_NE(std::find(krum.excluded.begin(), krum.excluded.end(), 4u),
            krum.excluded.end());
}

TEST(RobustAggregator, MultiKrumAveragesTheSelectedUpdates) {
  const std::vector<float> h1 = {1.0f};
  const std::vector<float> h2 = {2.0f};
  const std::vector<float> h3 = {1.5f};
  const std::vector<float> adv = {1000.0f};
  const auto out =
      make_kind(AggregatorKind::kKrum, 0.2, 1, 3)
          ->aggregate({dense(0, 1.0, h1), dense(1, 1.0, h2),
                       dense(2, 1.0, h3), dense(3, 1.0, adv)},
                      1);
  EXPECT_EQ(out.excluded, (std::vector<std::size_t>{3}));
  EXPECT_FLOAT_EQ(out.value[0], 1.5f);  // mean of the three honest updates
}

// ------------------------------------------------------- masked payloads --

TEST(RobustAggregator, MaskedMedianIsPerCoordinateOverOwners) {
  const std::vector<std::uint8_t> m1 = {1, 1, 0, 0};
  const std::vector<std::uint8_t> m2 = {1, 0, 1, 0};
  const std::vector<std::uint8_t> m3 = {0, 1, 1, 0};
  const std::vector<float> v1 = {1.0f, 10.0f};
  const std::vector<float> v2 = {3.0f, 7.0f};
  const std::vector<float> v3 = {20.0f, 9.0f};
  const auto out = make_kind(AggregatorKind::kCoordinateMedian)
                       ->aggregate({masked(0, 1.0, v1, m1),
                                    masked(1, 1.0, v2, m2),
                                    masked(2, 1.0, v3, m3)},
                                   4);
  EXPECT_FLOAT_EQ(out.value[0], 2.0f);   // owners {1, 3}
  EXPECT_FLOAT_EQ(out.value[1], 15.0f);  // owners {10, 20}
  EXPECT_FLOAT_EQ(out.value[2], 8.0f);   // owners {7, 9}
  EXPECT_EQ(out.defined, (std::vector<std::uint8_t>{1, 1, 1, 0}));
  EXPECT_FLOAT_EQ(out.value[3], 0.0f);   // nobody transmitted coordinate 3
}

TEST(RobustAggregator, MaskedMeanRenormalizesWeightsPerCoordinate) {
  const std::vector<std::uint8_t> m1 = {1, 1, 0};
  const std::vector<std::uint8_t> m2 = {1, 0, 0};
  const std::vector<float> v1 = {2.0f, 4.0f};
  const std::vector<float> v2 = {6.0f};
  const auto out =
      make_kind(AggregatorKind::kWeightedMean)
          ->aggregate({masked(0, 1.0, v1, m1), masked(1, 3.0, v2, m2)}, 3);
  EXPECT_FLOAT_EQ(out.value[0], 5.0f);  // (1*2 + 3*6) / 4
  EXPECT_FLOAT_EQ(out.value[1], 4.0f);  // only client 0 owns it
  EXPECT_EQ(out.defined, (std::vector<std::uint8_t>{1, 1, 0}));
}

TEST(RobustAggregator, SparseAttackerCannotHideFromKrum) {
  // The attacker uploads a single coordinate; distances are scaled back to
  // the full dimension, so under-reporting does not shrink its Krum score.
  const std::vector<float> h1 = {1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<float> h2 = {1.1f, 0.9f, 1.0f, 1.0f};
  const std::vector<float> h3 = {0.9f, 1.1f, 1.0f, 1.0f};
  const std::vector<std::uint8_t> madv = {1, 0, 0, 0};
  const std::vector<float> vadv = {50.0f};
  const auto out = make_kind(AggregatorKind::kKrum, 0.2, 1, 1)
                       ->aggregate({dense(0, 1.0, h1), dense(1, 1.0, h2),
                                    dense(2, 1.0, h3),
                                    masked(3, 1.0, vadv, madv)},
                                   4);
  EXPECT_NE(std::find(out.excluded.begin(), out.excluded.end(), 3u),
            out.excluded.end());
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GE(out.value[j], 0.9f);
    EXPECT_LE(out.value[j], 1.1f);
  }
}

// ------------------------------------------------- Byzantine fault model --

TEST(FaultModelByzantine, ExplicitCohortOverridesFraction) {
  FaultConfig cfg;
  cfg.byzantine_fraction = 1.0;  // would mark everyone...
  cfg.byzantine_clients = {0, 1};  // ...but the explicit mask wins
  const FaultModel fm(cfg);
  EXPECT_FALSE(fm.is_byzantine(0));
  EXPECT_TRUE(fm.is_byzantine(1));
  EXPECT_FALSE(fm.is_byzantine(2));  // mask repeats modulo its size
  EXPECT_TRUE(fm.is_byzantine(3));
}

TEST(FaultModelByzantine, FractionIsStableAndSeedKeyed) {
  FaultConfig cfg;
  cfg.byzantine_fraction = 0.5;
  cfg.seed = 1;
  const FaultModel a(cfg);
  cfg.seed = 2;
  const FaultModel b(cfg);
  std::size_t count = 0;
  std::vector<std::uint8_t> ma, mb;
  for (std::size_t c = 0; c < 200; ++c) {
    ma.push_back(a.is_byzantine(c) ? 1 : 0);
    mb.push_back(b.is_byzantine(c) ? 1 : 0);
    if (ma.back()) ++count;
    // Membership is static: re-querying never changes the answer.
    EXPECT_EQ(a.is_byzantine(c), ma.back() != 0);
  }
  EXPECT_NEAR(double(count) / 200.0, 0.5, 0.12);
  EXPECT_NE(ma, mb);  // different seed, different cohort
}

TEST(FaultModelByzantine, SignFlipAndScaleMatchClosedForm) {
  FaultConfig cfg;
  cfg.byzantine_clients = {1};  // everyone attacks
  cfg.attack_kind = AttackKind::kSignFlip;
  const std::vector<float> ref = {0.5f, 0.5f};
  std::vector<float> p = {1.0f, 2.0f};
  EXPECT_TRUE(FaultModel(cfg).attack(1, 0, p, &ref));
  EXPECT_FLOAT_EQ(p[0], 0.0f);   // 2*0.5 - 1
  EXPECT_FLOAT_EQ(p[1], -1.0f);  // 2*0.5 - 2

  // Null reference treats the payload as a delta about the origin.
  p = {1.0f, -2.0f};
  EXPECT_TRUE(FaultModel(cfg).attack(1, 0, p, nullptr));
  EXPECT_FLOAT_EQ(p[0], -1.0f);
  EXPECT_FLOAT_EQ(p[1], 2.0f);

  cfg.attack_kind = AttackKind::kScale;
  cfg.attack_scale = 3.0;
  p = {1.0f, 2.0f};
  EXPECT_TRUE(FaultModel(cfg).attack(1, 0, p, &ref));
  EXPECT_FLOAT_EQ(p[0], 2.0f);  // 0.5 + 3*0.5
  EXPECT_FLOAT_EQ(p[1], 5.0f);  // 0.5 + 3*1.5

  // Honest clients are never touched.
  cfg.byzantine_clients = {0};
  p = {1.0f, 2.0f};
  EXPECT_FALSE(FaultModel(cfg).attack(1, 0, p, &ref));
  EXPECT_FLOAT_EQ(p[0], 1.0f);
  EXPECT_FLOAT_EQ(p[1], 2.0f);
}

TEST(FaultModelByzantine, CollusionPushesIdenticalPayloads) {
  FaultConfig cfg;
  cfg.byzantine_clients = {1};
  cfg.attack_kind = AttackKind::kFixedDirection;
  cfg.attack_scale = 2.0;
  const FaultModel fm(cfg);
  const std::vector<float> ref = {0.0f, 0.0f, 0.0f};
  std::vector<float> p1 = {5.0f, -3.0f, 1.0f};
  std::vector<float> p2 = {-9.0f, 4.0f, 0.0f};
  EXPECT_TRUE(fm.attack(3, 0, p1, &ref));
  EXPECT_TRUE(fm.attack(3, 1, p2, &ref));
  // Colluders erase their own updates and all push the same direction.
  EXPECT_EQ(std::memcmp(p1.data(), p2.data(), p1.size() * sizeof(float)), 0);
  for (const float x : p1) EXPECT_EQ(std::abs(x), 2.0f);
}

TEST(FaultModelByzantine, NoiseAttackIsDeterministicPerRoundAndClient) {
  FaultConfig cfg;
  cfg.byzantine_clients = {1};
  cfg.attack_kind = AttackKind::kGaussianNoise;
  cfg.attack_noise_std = 0.5;
  const FaultModel a(cfg), b(cfg);
  std::vector<float> p1(16, 1.0f), p2(16, 1.0f), p3(16, 1.0f);
  EXPECT_TRUE(a.attack(2, 3, p1));
  EXPECT_TRUE(b.attack(2, 3, p2));
  EXPECT_EQ(std::memcmp(p1.data(), p2.data(), p1.size() * sizeof(float)), 0);
  EXPECT_TRUE(a.attack(3, 3, p3));  // a different round draws fresh noise
  EXPECT_NE(std::memcmp(p1.data(), p3.data(), p1.size() * sizeof(float)), 0);
}

// ------------------------------------------------------- end-to-end runs --

// Zero attack rates plus an explicit mean aggregator must stay bit-identical
// to the undefended run (the robust layer is strictly opt-in).
class RobustCleanIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(RobustCleanIdentity, MeanAggregatorIsBitIdenticalToUndefended) {
  const auto source = small_source();
  common::Rng rng1(31), rng2(31);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto a = make_baseline(GetParam(), env1, small_config());
  auto b = make_baseline(GetParam(), env2, small_config());

  RunOptions clean;
  clean.rounds = 3;
  clean.sample_ratio = 0.5;
  RunOptions defended = clean;
  FaultConfig fc;  // all rates zero, no Byzantine cohort
  defended.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kWeightedMean;
  defended.resilience = rc;

  const auto ra = run_federated(*a, clean);
  const auto rb = run_federated(*b, defended);
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
  EXPECT_EQ(ra.total_bytes, rb.total_bytes);
  EXPECT_EQ(rb.total_attacked, 0u);
  EXPECT_EQ(rb.total_suspected, 0u);
  const auto wa = global_weights(*a);
  const auto wb = global_weights(*b);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RobustCleanIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold"));

TEST(RobustRun, AttackersAreAttributedInRoundStats) {
  const auto source = small_source();
  common::Rng rng(83);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 2;
  FaultConfig fc;
  fc.byzantine_clients = {1, 0, 0, 0};  // client 0 only
  fc.attack_kind = AttackKind::kSignFlip;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kCoordinateMedian;
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.total_attacked, 2u);  // one attacker, two rounds
  for (const auto& rec : result.history) {
    EXPECT_EQ(rec.stats.attackers, (std::vector<std::size_t>{0}));
  }
  EXPECT_TRUE(is_finite(global_weights(algo)));
}

TEST(RobustRun, KrumSuspectsTheScaledAttacker) {
  const auto source = small_source();
  common::Rng rng(89);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 2;
  FaultConfig fc;
  fc.byzantine_clients = {1, 0, 0, 0};
  fc.attack_kind = AttackKind::kScale;
  fc.attack_scale = 100.0;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kKrum;
  rc.krum_f = 1;
  rc.multi_krum = 3;
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  EXPECT_GT(result.total_suspected, 0u);
  for (const auto& rec : result.history) {
    EXPECT_EQ(rec.stats.suspects, (std::vector<std::size_t>{0}));
  }
  EXPECT_TRUE(is_finite(global_weights(algo)));
}

TEST(RobustRun, MedianBeatsMeanUnderScaledAttack) {
  const auto source = small_source();
  auto run_with = [&source](AggregatorKind kind) {
    common::Rng rng(97);
    FlEnvironment env(source, 4, 5.0, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 4;
    FaultConfig fc;
    fc.byzantine_clients = {1, 0, 0, 0};
    fc.attack_kind = AttackKind::kScale;
    fc.attack_scale = 50.0;
    opts.faults = fc;
    ResilienceConfig rc;
    rc.aggregator = kind;
    opts.resilience = rc;
    return run_federated(algo, opts);
  };
  const auto mean = run_with(AggregatorKind::kWeightedMean);
  const auto median = run_with(AggregatorKind::kCoordinateMedian);
  // The boosted update passes validation and wrecks the mean; the median
  // keeps learning.
  EXPECT_GT(median.final_accuracy, mean.final_accuracy + 0.05);
}

TEST(RobustRun, NormClippedMeanNeutralizesBoostedUpdates) {
  const auto source = small_source();
  common::Rng rng(101);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 2;
  FaultConfig fc;
  fc.byzantine_clients = {1, 0, 0, 0};
  fc.attack_kind = AttackKind::kScale;
  fc.attack_scale = 100.0;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kNormClippedMean;
  rc.clip_norm = 0.0;  // auto: median update norm
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  std::size_t clipped = 0;
  for (const auto& rec : result.history) clipped += rec.stats.clipped;
  EXPECT_GT(clipped, 0u);
  EXPECT_TRUE(is_finite(global_weights(algo)));
}

TEST(RobustRun, SpatlMaskedUplinksSurviveByzantineClients) {
  const auto source = small_source();
  common::Rng rng(103);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  core::SpatlOptions sopts;
  sopts.agent_finetune_rounds = 0;  // keep the run fast; selection still on
  core::SpatlAlgorithm algo(env, small_config(), sopts);

  RunOptions opts;
  opts.rounds = 3;
  FaultConfig fc;
  fc.byzantine_clients = {1, 0, 0, 0};
  fc.attack_kind = AttackKind::kSignFlip;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kCoordinateMedian;
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.total_attacked, 3u);
  EXPECT_TRUE(is_finite(
      nn::flatten_values(algo.global_model().encoder_params())));
  EXPECT_GE(result.final_accuracy, 0.0);
}

// ------------------------------------------- fault-aware client sampling --

TEST(FaultAwareSampling, FlakyClientsAreSelectedLess) {
  const auto source = small_source();
  auto run_with = [&source](bool aware) {
    common::Rng rng(107);
    FlEnvironment env(source, 8, 0.5, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 10;
    opts.sample_ratio = 0.5;
    opts.eval_every = 100;  // final-round eval only; selection is the point
    opts.sampling_seed = 5;
    opts.fault_aware_sampling = aware;
    opts.fault_ema_decay = 0.3;  // learn failures quickly
    FaultConfig fc;
    // Clients 0-3 are permanently down; 4-7 are always up.
    fc.availability = {0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0};
    opts.faults = fc;
    return run_federated(algo, opts);
  };
  const auto uniform = run_with(false);
  const auto aware = run_with(true);
  // Uniform sampling keeps wasting slots on dead clients; the EMA-weighted
  // sampler routes selection to the live half after the first few rounds.
  EXPECT_LT(aware.total_dropped * 2, uniform.total_dropped);
  EXPECT_GT(aware.total_accepted, uniform.total_accepted);
  EXPECT_EQ(aware.total_selected, uniform.total_selected);
}

}  // namespace
}  // namespace spatl::fl
