#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "models/checkpoint.hpp"
#include "tensor/ops.hpp"
#include "tensor/serialize.hpp"

namespace spatl {
namespace {

TEST(Serialize, RoundTripsNamedTensors) {
  common::Rng rng(1);
  std::vector<tensor::NamedTensor> entries;
  entries.push_back({"a", tensor::Tensor::randn({3, 4}, rng)});
  entries.push_back({"layer.weight", tensor::Tensor::randn({2, 2, 2}, rng)});
  entries.push_back({"scalar-ish", tensor::Tensor({1}, 42.0f)});

  std::stringstream buf;
  tensor::write_tensors(buf, entries);
  const auto loaded = tensor::read_tensors(buf);
  ASSERT_EQ(loaded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded[i].name, entries[i].name);
    EXPECT_TRUE(tensor::allclose(loaded[i].value, entries[i].value, 0.0f));
  }
}

TEST(Serialize, EmptyListRoundTrips) {
  std::stringstream buf;
  tensor::write_tensors(buf, {});
  EXPECT_TRUE(tensor::read_tensors(buf).empty());
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  {
    std::stringstream buf;
    buf << "this is not a spatl file at all";
    EXPECT_THROW(tensor::read_tensors(buf), std::runtime_error);
  }
  {
    common::Rng rng(2);
    std::stringstream buf;
    tensor::write_tensors(buf, {{"x", tensor::Tensor::randn({64}, rng)}});
    const std::string full = buf.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(tensor::read_tensors(cut), std::runtime_error);
  }
}

TEST(Serialize, FileHelpersWork) {
  const std::string path = ::testing::TempDir() + "/spatl_ser_test.bin";
  common::Rng rng(3);
  tensor::save_tensors(path, {{"w", tensor::Tensor::randn({5}, rng)}});
  const auto loaded = tensor::load_tensors(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "w");
  std::remove(path.c_str());
  EXPECT_THROW(tensor::load_tensors(path), std::runtime_error);
}

TEST(Checkpoint, RestoresExactForwardBehaviour) {
  models::ModelConfig cfg;
  cfg.arch = "resnet20";
  cfg.input_size = 8;
  cfg.width_mult = 0.25;
  common::Rng rng(5);
  auto a = models::build_model(cfg, rng);
  auto b = models::build_model(cfg, rng);  // different weights

  // Touch BN running stats so the checkpoint has non-default buffers.
  nn::Tensor x = nn::Tensor::randn({4, 3, 8, 8}, rng);
  a.forward(x, /*train=*/true);

  const std::string path = ::testing::TempDir() + "/spatl_ckpt_test.bin";
  models::save_checkpoint(path, a);
  models::load_checkpoint(path, b);
  EXPECT_TRUE(tensor::allclose(a.forward(x, false), b.forward(x, false),
                               1e-6f));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  models::ModelConfig cfg;
  cfg.arch = "cnn2";
  cfg.in_channels = 3;
  cfg.input_size = 8;
  cfg.width_mult = 0.25;
  common::Rng rng(7);
  auto cnn = models::build_model(cfg, rng);
  const std::string path = ::testing::TempDir() + "/spatl_ckpt_arch.bin";
  models::save_checkpoint(path, cnn);

  models::ModelConfig other = cfg;
  other.arch = "resnet20";
  auto resnet = models::build_model(other, rng);
  EXPECT_THROW(models::load_checkpoint(path, resnet), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spatl
