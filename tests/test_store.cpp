#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/checkpoint.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"
#include "fl/runner.hpp"
#include "fl/store/error.hpp"
#include "fl/store/format.hpp"
#include "fl/store/io.hpp"
#include "fl/store/store.hpp"
#include "obs/export.hpp"

namespace spatl::fl {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the system temp root; removed on scope
/// exit so failed runs cannot poison later ones.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_((fs::temp_directory_path() / ("spatl_store_" + tag)).string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<tensor::NamedTensor> sample_entries() {
  std::vector<tensor::NamedTensor> entries;
  entries.push_back(pack_floats("model/w", {1.5f, -2.25f, 0.0f}));
  entries.push_back(pack_u64s("run/round", {7, 0xFFFFFFFFFFFFFFFFULL}));
  entries.push_back(pack_floats("empty", {}));
  return entries;
}

void expect_same_entries(const std::vector<tensor::NamedTensor>& a,
                         const std::vector<tensor::NamedTensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].value.shape(), b[i].value.shape());
    ASSERT_EQ(a[i].value.numel(), b[i].value.numel());
    EXPECT_EQ(std::memcmp(a[i].value.data(), b[i].value.data(),
                          a[i].value.numel() * sizeof(float)),
              0);
  }
}

// ------------------------------------------------------- envelope format --

TEST(StoreFormat, Crc32KnownAnswer) {
  // The IEEE 802.3 check value: CRC32("123456789") == 0xCBF43926.
  const char* msg = "123456789";
  EXPECT_EQ(store::crc32(msg, 9), 0xCBF43926u);
  // Chaining partial computations matches one pass.
  const std::uint32_t partial = store::crc32(msg, 4);
  EXPECT_EQ(store::crc32(msg + 4, 5, partial), 0xCBF43926u);
  EXPECT_EQ(store::crc32(msg, 0), 0u);
}

TEST(StoreFormat, EncodeDecodeRoundTrips) {
  const auto entries = sample_entries();
  const std::string bytes = store::encode_checkpoint(entries);
  const auto back = store::decode_checkpoint(bytes, "mem");
  expect_same_entries(entries, back);
  // No-entry checkpoints are legal (header + empty footer).
  const std::string none = store::encode_checkpoint({});
  EXPECT_TRUE(store::decode_checkpoint(none, "mem").empty());
}

TEST(StoreFormat, EveryTruncationIsDetected) {
  const std::string bytes = store::encode_checkpoint(sample_entries());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(store::decode_checkpoint(bytes.substr(0, len), "mem"),
                 store::CheckpointError)
        << "truncation to " << len << " bytes went undetected";
  }
  EXPECT_THROW(store::decode_checkpoint(bytes + 'x', "mem"),
               store::CheckpointError);
}

TEST(StoreFormat, EverySingleBitFlipIsDetected) {
  // Walk a flip across every byte of the file — header, entry bytes, the
  // per-entry CRCs, the payload CRC, and the footer magic — cycling the bit
  // position so all eight bit lanes get coverage.
  const std::string bytes = store::encode_checkpoint(sample_entries());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = char(std::uint8_t(corrupt[i]) ^ (1u << (i % 8)));
    EXPECT_THROW(store::decode_checkpoint(corrupt, "mem"),
                 store::CheckpointError)
        << "bit flip at byte " << i << " went undetected";
  }
}

TEST(StoreFormat, ErrorsCarryPathEntryAndReason) {
  const std::string bytes = store::encode_checkpoint(sample_entries());
  std::string corrupt = bytes;
  corrupt[20] = char(std::uint8_t(corrupt[20]) ^ 0x10);  // inside entry 0
  try {
    store::decode_checkpoint(corrupt, "gen.spatl");
    FAIL() << "corrupt envelope decoded";
  } catch (const store::CheckpointError& e) {
    EXPECT_EQ(e.path(), "gen.spatl");
    EXPECT_FALSE(e.reason().empty());
    EXPECT_NE(std::string(e.what()).find("gen.spatl"), std::string::npos);
  }
}

// ------------------------------------------------ lossless pack hardening --

TEST(CheckpointPackValidation, RejectsCorruptedU64Chunks) {
  // Each chunk must be an integral float in [0, 65535]; the legacy code
  // cast silently and a bit-flipped tensor decoded to a plausible wrong
  // word (undefined behaviour for NaN/Inf).
  const auto good = pack_u64s("n", {1, 2});
  for (const float bad : {70000.0f, -1.0f, 0.5f,
                          std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    auto t = good;
    t.value[3] = bad;
    EXPECT_THROW(unpack_u64s(t.value), store::CheckpointError)
        << "chunk value " << bad << " accepted";
  }
  // Chunk counts must stay a multiple of four words.
  tensor::Tensor odd({4});  // pad + 3 chunks
  EXPECT_THROW(unpack_u64s(odd), std::runtime_error);
  EXPECT_EQ(unpack_u64s(good.value), (std::vector<std::uint64_t>{1, 2}));
}

TEST(CheckpointPackValidation, SeededPropertyRoundTrip) {
  // Randomized round-trips through pack -> envelope encode/decode ->
  // unpack: u64 words, doubles reconstructed from raw 64-bit patterns
  // (NaN/Inf payloads included), floats, and RNG cursors; empty payloads
  // are forced on the first iteration.
  common::Rng rng(2026);
  const auto word = [&rng] {
    return (rng.uniform_index(1ULL << 32) << 32) |
           rng.uniform_index(1ULL << 32);
  };
  for (int iter = 0; iter < 24; ++iter) {
    const std::size_t n = iter == 0 ? 0 : rng.uniform_index(17);
    std::vector<std::uint64_t> words(n);
    std::vector<double> doubles(n);
    std::vector<float> floats(n);
    for (std::size_t i = 0; i < n; ++i) {
      words[i] = word();
      // Bias some doubles to special bit patterns.
      std::uint64_t dbits = word();
      if (i % 5 == 1) dbits = 0x7FF0000000000000ULL;          // +Inf
      if (i % 5 == 2) dbits = 0xFFF8000000000001ULL;          // quiet NaN
      if (i % 5 == 3) dbits = 0x0000000000000001ULL;          // denormal
      std::memcpy(&doubles[i], &dbits, sizeof(double));
      floats[i] = float(rng.normal());
    }
    common::Rng stream(word());
    for (std::uint64_t k = rng.uniform_index(9); k > 0; --k) stream.uniform();
    if (iter % 2 == 0) (void)stream.normal();  // cached Box-Muller deviate

    std::vector<tensor::NamedTensor> entries;
    entries.push_back(pack_u64s("w", words));
    entries.push_back(pack_doubles("d", doubles));
    entries.push_back(pack_floats("f", floats));
    entries.push_back(pack_rng("r", stream));
    const auto back =
        store::decode_checkpoint(store::encode_checkpoint(entries), "mem");
    ASSERT_EQ(back.size(), 4u);

    EXPECT_EQ(unpack_u64s(back[0].value), words);
    const auto d = unpack_doubles(back[1].value);
    ASSERT_EQ(d.size(), doubles.size());
    EXPECT_EQ(std::memcmp(d.data(), doubles.data(), n * sizeof(double)), 0);
    const auto f = unpack_floats(back[2].value);
    ASSERT_EQ(f.size(), floats.size());
    EXPECT_EQ(std::memcmp(f.data(), floats.data(), n * sizeof(float)), 0);
    common::Rng restored(1);
    unpack_rng(back[3].value, restored);
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(stream.uniform(), restored.uniform());
      EXPECT_EQ(stream.normal(), restored.normal());
    }
  }
}

TEST(CheckpointPackValidation, LegacySaveIsAtomicAndByteStable) {
  // RunCheckpoint::save now routes through tmp+rename, but the final file
  // bytes must stay exactly the historical tensor-container stream.
  ScratchDir dir("legacy");
  RunCheckpoint ckpt;
  ckpt.entries = sample_entries();
  const std::string path = dir.file("legacy.bin");
  ckpt.save(path);
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // tmp renamed away

  std::ostringstream direct;
  tensor::write_tensors(direct, ckpt.entries);
  EXPECT_EQ(slurp(path), direct.str());
  expect_same_entries(ckpt.entries, RunCheckpoint::load(path).entries);
  EXPECT_THROW(RunCheckpoint::load(dir.file("missing.bin")),
               store::CheckpointError);
}

// -------------------------------------------------------- generation store --

RunCheckpoint tiny_checkpoint(std::uint64_t round) {
  RunCheckpoint ckpt;
  ckpt.entries.push_back(pack_u64s("run/round", {round}));
  ckpt.entries.push_back(pack_floats("model/w", {float(round), -1.0f}));
  return ckpt;
}

TEST(CheckpointStore, CommitPruneManifestAndLoad) {
  ScratchDir dir("commit");
  store::StoreConfig cfg;
  cfg.dir = dir.path();
  cfg.keep_last = 2;
  store::CheckpointStore st(cfg);

  for (const std::uint64_t round : {2, 4, 6}) {
    EXPECT_TRUE(st.commit(std::size_t(round), tiny_checkpoint(round)));
  }
  EXPECT_EQ(st.commits(), 3u);
  EXPECT_EQ(st.commit_failures(), 0u);

  const auto gens = st.generations();
  ASSERT_EQ(gens.size(), 2u);  // round 2 pruned
  EXPECT_EQ(gens[0].round, 6u);
  EXPECT_EQ(gens[1].round, 4u);
  EXPECT_FALSE(fs::exists(dir.file("ckpt-00000002.spatl")));
  EXPECT_TRUE(fs::exists(gens[0].path));

  const RunCheckpoint loaded = st.load(gens[0]);
  EXPECT_EQ(unpack_u64s(loaded.at("run/round")),
            (std::vector<std::uint64_t>{6}));

  // The manifest is advisory but must list exactly the kept generations.
  const std::string manifest = slurp(dir.file("MANIFEST.json"));
  EXPECT_NE(manifest.find("ckpt-00000004.spatl"), std::string::npos);
  EXPECT_NE(manifest.find("ckpt-00000006.spatl"), std::string::npos);
  EXPECT_EQ(manifest.find("ckpt-00000002.spatl"), std::string::npos);

  // Foreign filenames in the directory are ignored by the scan.
  std::ofstream(dir.file("notes.txt")) << "hi";
  std::ofstream(dir.file("ckpt-woops.spatl")) << "hi";
  EXPECT_EQ(st.generations().size(), 2u);
}

TEST(CheckpointStore, RecoveryLadderStepsPastCorruptNewest) {
  ScratchDir dir("ladder");
  const std::string log = dir.file("telemetry.jsonl");
  store::StoreConfig cfg;
  cfg.dir = dir.file("store");
  cfg.keep_last = 0;  // unlimited
  {
    obs::JsonlWriter telemetry(log);
    store::CheckpointStore st(cfg, nullptr, &telemetry);
    for (const std::uint64_t round : {1, 2, 3}) {
      ASSERT_TRUE(st.commit(std::size_t(round), tiny_checkpoint(round)));
    }
    // Flip one bit in the newest generation on disk: recovery must reject
    // it (typed, telemetered) and land on round 2.
    const auto gens = st.generations();
    ASSERT_EQ(gens.size(), 3u);
    std::string bytes = slurp(gens[0].path);
    bytes[bytes.size() / 2] =
        char(std::uint8_t(bytes[bytes.size() / 2]) ^ 0x04);
    std::ofstream(gens[0].path, std::ios::binary) << bytes;

    std::size_t applied_round = 0;
    const store::RecoveryOutcome out = st.recover_latest(
        [&](const RunCheckpoint& c, const store::Generation& g) {
          applied_round = g.round;
          EXPECT_EQ(unpack_u64s(c.at("run/round")),
                    (std::vector<std::uint64_t>{g.round}));
        });
    ASSERT_TRUE(out.applied.has_value());
    EXPECT_EQ(out.applied->round, 2u);
    EXPECT_EQ(applied_round, 2u);
    EXPECT_EQ(out.failed_attempts, 1u);
  }
  const std::string records = slurp(log);
  EXPECT_NE(records.find("\"type\":\"recovery\""), std::string::npos);
  EXPECT_NE(records.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(records.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(records.find("\"error\""), std::string::npos);
}

TEST(CheckpointStore, LadderExhaustionFallsBackToCaller) {
  ScratchDir dir("exhaust");
  store::StoreConfig cfg;
  cfg.dir = dir.path();
  store::CheckpointStore st(cfg);
  ASSERT_TRUE(st.commit(1, tiny_checkpoint(1)));
  const auto gens = st.generations();
  ASSERT_EQ(gens.size(), 1u);
  std::ofstream(gens[0].path, std::ios::binary) << "garbage";

  const store::RecoveryOutcome out = st.recover_latest(
      [](const RunCheckpoint&, const store::Generation&) {});
  EXPECT_FALSE(out.applied.has_value());
  EXPECT_EQ(out.failed_attempts, 1u);
}

TEST(CheckpointStore, ApplyFailureWalksToOlderGeneration) {
  // A generation can decode cleanly yet fail restore (e.g. missing entries
  // for the running configuration); the ladder must treat that the same as
  // a corrupt file and step down.
  ScratchDir dir("apply");
  store::StoreConfig cfg;
  cfg.dir = dir.path();
  store::CheckpointStore st(cfg);
  ASSERT_TRUE(st.commit(1, tiny_checkpoint(1)));
  ASSERT_TRUE(st.commit(2, tiny_checkpoint(2)));

  const store::RecoveryOutcome out = st.recover_latest(
      [](const RunCheckpoint& c, const store::Generation& g) {
        if (g.round == 2) {
          throw std::runtime_error("incompatible snapshot");
        }
        EXPECT_EQ(unpack_u64s(c.at("run/round")),
                  (std::vector<std::uint64_t>{1}));
      });
  ASSERT_TRUE(out.applied.has_value());
  EXPECT_EQ(out.applied->round, 1u);
  EXPECT_EQ(out.failed_attempts, 1u);
}

TEST(CheckpointStore, VerifyOnCommitUnpublishesTornGeneration) {
  ScratchDir dir("verify");
  StorageFaultConfig faults;
  faults.torn_write_rate = 1.0;  // every write silently truncated
  faults.seed = 77;
  FaultyStoreIo io(faults);
  const std::string log = dir.file("telemetry.jsonl");
  store::StoreConfig cfg;
  cfg.dir = dir.file("store");
  cfg.verify_on_commit = true;
  {
    obs::JsonlWriter telemetry(log);
    store::CheckpointStore st(cfg, &io, &telemetry);
    EXPECT_FALSE(st.commit(1, tiny_checkpoint(1)));
    EXPECT_EQ(st.commit_failures(), 1u);
    // The torn generation was removed: nothing is published, so recovery
    // can never load a file that read-back verification already rejected.
    EXPECT_TRUE(st.generations().empty());
  }
  EXPECT_GE(io.torn_writes(), 1u);
  const std::string records = slurp(log);
  EXPECT_NE(records.find("\"type\":\"recovery\""), std::string::npos);
  EXPECT_NE(records.find("\"phase\":\"commit\""), std::string::npos);
}

// ------------------------------------------------- storage fault injection --

TEST(StorageFaults, InjectionIsDeterministicPerSeedAndSequence) {
  ScratchDir dir("det");
  const std::string payload(512, 'a');
  StorageFaultConfig faults;
  faults.torn_write_rate = 0.5;
  faults.corrupt_rate = 0.3;
  faults.seed = 1234;

  const auto run = [&](const std::string& sub) {
    FaultyStoreIo io(faults);
    fs::create_directories(fs::path(dir.path()) / sub);
    std::vector<std::string> files;
    for (int i = 0; i < 8; ++i) {
      const std::string p =
          (fs::path(dir.path()) / sub / ("f" + std::to_string(i))).string();
      io.write_file(p, payload);
      files.push_back(slurp(p));
    }
    EXPECT_EQ(io.writes(), 8u);
    return std::make_tuple(files, io.torn_writes(), io.corrupted_writes());
  };

  const auto a = run("a");
  const auto b = run("b");
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));  // byte-identical damage
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  // With these rates and 8 writes the drill must actually injure something.
  EXPECT_GE(std::get<1>(a) + std::get<2>(a), 1u);
}

TEST(StorageFaults, SimulatedEnospcThrowsTypedErrorAfterPartialWrite) {
  ScratchDir dir("enospc");
  StorageFaultConfig faults;
  faults.io_error_rate = 1.0;
  FaultyStoreIo io(faults);
  const std::string payload(256, 'z');
  const std::string path = dir.file("victim");
  try {
    io.write_file(path, payload);
    FAIL() << "short write reported success";
  } catch (const store::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("short write"), std::string::npos);
  }
  EXPECT_EQ(io.io_errors(), 1u);
  // The loud failure still leaves a prefix on disk, like a real ENOSPC.
  EXPECT_LT(slurp(path).size(), payload.size());

  // Under atomic commit the damage is confined to the tmp file: the
  // destination never appears.
  const std::string final_path = dir.file("atomic");
  EXPECT_THROW(store::atomic_write_file(io, final_path, payload),
               store::CheckpointError);
  EXPECT_FALSE(fs::exists(final_path));
}

// ----------------------------------------------------- runner chaos drills --

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

std::vector<float> global_weights(FederatedAlgorithm& algo) {
  return nn::flatten_values(algo.global_model().all_params());
}

std::unique_ptr<FederatedAlgorithm> make_algorithm(const std::string& name,
                                                   FlEnvironment& env) {
  if (name == "spatl") {
    core::SpatlOptions sopts;
    sopts.agent_finetune_rounds = 1;
    sopts.agent_finetune_episodes = 1;
    return std::make_unique<core::SpatlAlgorithm>(env, small_config(), sopts);
  }
  return make_baseline(name, env, small_config());
}

RunOptions chaos_options() {
  RunOptions opts;
  opts.rounds = 4;
  opts.sample_ratio = 0.75;
  opts.eval_every = 2;
  opts.sampling_seed = 9;
  opts.fault_aware_sampling = true;
  FaultConfig fc;
  fc.dropout_rate = 0.2;
  fc.loss_rate = 0.2;
  fc.byzantine_clients = {1, 0, 0, 0};
  fc.attack_kind = AttackKind::kScale;
  fc.attack_scale = 2.0;
  fc.seed = 400;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kCoordinateMedian;
  opts.resilience = rc;
  return opts;
}

/// The chaos acceptance drill: crash mid-run while every store write risks
/// torn bytes and bit rot; the run must finish bit-identical to the
/// uncrashed, storage-fault-free twin for every algorithm.
class StorageChaosBitIdentity : public ::testing::TestWithParam<const char*> {
};

TEST_P(StorageChaosBitIdentity, CrashedChaosRunMatchesCleanTwin) {
  const auto source = small_source();

  // Twin: same FL-level faults, no crashes, no store, no storage faults.
  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto clean = make_algorithm(GetParam(), env1);
  const auto clean_result = run_federated(*clean, chaos_options());

  ScratchDir dir(std::string("chaos_") + GetParam());
  StorageFaultConfig faults;
  faults.torn_write_rate = 0.25;
  faults.corrupt_rate = 0.3;
  faults.seed = 9001;
  FaultyStoreIo io(faults);

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto chaotic = make_algorithm(GetParam(), env2);
  RunOptions opts = chaos_options();
  opts.checkpoint_every = 1;
  store::StoreConfig sc;
  sc.dir = dir.file("store");
  sc.keep_last = 2;
  opts.ckpt_store = sc;
  opts.store_io = &io;
  opts.crash_at_rounds = {2, 3};
  const std::string log = dir.file("telemetry.jsonl");
  RunResult chaos_result;
  {
    obs::JsonlWriter telemetry(log);
    opts.telemetry = &telemetry;
    chaos_result = run_federated(*chaotic, opts);
  }

  EXPECT_EQ(chaos_result.crashes_injected, 2u);
  EXPECT_GT(chaos_result.store_commits, 0u);
  const auto wa = global_weights(*clean);
  const auto wb = global_weights(*chaotic);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(clean_result.final_accuracy, chaos_result.final_accuracy);

  // Every crash consulted the ladder and left a paper trail.
  const std::string records = slurp(log);
  EXPECT_NE(records.find("\"type\":\"recovery\""), std::string::npos);
  EXPECT_NE(records.find("\"type\":\"crash\""), std::string::npos);
  EXPECT_NE(records.find("\"source\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, StorageChaosBitIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold", "spatl"));

TEST(StorageChaos, TornWriteOnEveryCommitStillFinishesBitIdentical) {
  // The worst storage day possible: every single store write is torn, so
  // every generation is corrupt and the ladder exhausts. The drill must
  // fall back to the deterministic baseline and still converge to the
  // exact bytes of the clean twin.
  const auto source = small_source();
  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto clean = make_algorithm("fedavg", env1);
  run_federated(*clean, chaos_options());

  ScratchDir dir("torn_all");
  StorageFaultConfig faults;
  faults.torn_write_rate = 1.0;
  faults.seed = 5;
  FaultyStoreIo io(faults);
  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto chaotic = make_algorithm("fedavg", env2);
  RunOptions opts = chaos_options();
  opts.checkpoint_every = 1;
  store::StoreConfig sc;
  sc.dir = dir.file("store");
  opts.ckpt_store = sc;
  opts.store_io = &io;
  opts.crash_at_rounds = {2};
  const std::string log = dir.file("telemetry.jsonl");
  RunResult result;
  {
    obs::JsonlWriter telemetry(log);
    opts.telemetry = &telemetry;
    result = run_federated(*chaotic, opts);
  }

  EXPECT_EQ(result.crashes_injected, 1u);
  EXPECT_EQ(result.recoveries_from_store, 0u);  // nothing on disk survived
  EXPECT_GT(result.recovery_attempts_failed, 0u);
  const auto wa = global_weights(*clean);
  const auto wb = global_weights(*chaotic);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  const std::string records = slurp(log);
  EXPECT_NE(records.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(records.find("\"source\":\"baseline\""), std::string::npos);
}

/// Find a fault seed whose write-sequence damage pattern matches the drill:
/// write 0 (the round-1 generation) lands clean, write 2 (the round-2
/// generation) is torn. Probed against scratch files with the same
/// deterministic injector the run will use, so the search is exact.
std::uint64_t find_torn_second_commit_seed(const ScratchDir& dir) {
  for (std::uint64_t seed = 0; seed < 512; ++seed) {
    StorageFaultConfig faults;
    faults.torn_write_rate = 0.5;
    faults.seed = seed;
    FaultyStoreIo probe(faults);
    std::vector<std::size_t> torn_after;
    for (int op = 0; op < 4; ++op) {
      probe.write_file(dir.file("probe"), "0123456789abcdef");
      torn_after.push_back(probe.torn_writes());
    }
    const bool op0_clean = torn_after[0] == 0;
    const bool op2_torn = torn_after[2] > torn_after[1];
    if (op0_clean && op2_torn) return seed;
  }
  ADD_FAILURE() << "no matching fault seed in the probe range";
  return 0;
}

TEST(StorageChaos, LadderRecoversFromOlderGenerationBitIdentical) {
  // Corruption hits exactly the newest generation at crash time: commit 1
  // (store write 0) is clean, commit 2 (store write 2; write 1 is the
  // manifest) is torn. The crash at round 2 must step the ladder past the
  // torn round-2 file, restore round 1 from disk, and still finish
  // bit-identical.
  const auto source = small_source();
  ScratchDir dir("ladder_run");
  const std::uint64_t seed = find_torn_second_commit_seed(dir);

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto clean = make_algorithm("fedavg", env1);
  run_federated(*clean, chaos_options());

  StorageFaultConfig faults;
  faults.torn_write_rate = 0.5;
  faults.seed = seed;
  FaultyStoreIo io(faults);
  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto chaotic = make_algorithm("fedavg", env2);
  RunOptions opts = chaos_options();
  opts.checkpoint_every = 1;
  store::StoreConfig sc;
  sc.dir = dir.file("store");
  opts.ckpt_store = sc;
  opts.store_io = &io;
  opts.crash_at_rounds = {2};
  const auto result = run_federated(*chaotic, opts);

  EXPECT_EQ(result.crashes_injected, 1u);
  EXPECT_EQ(result.recoveries_from_store, 1u);
  EXPECT_EQ(result.recovery_attempts_failed, 1u);  // the torn round-2 file
  const auto wa = global_weights(*clean);
  const auto wb = global_weights(*chaotic);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
}

TEST(StorageChaos, StoreOffSwitchKeepsLegacyResultsAndTelemetry) {
  // ckpt_store unset must leave every float and every telemetry byte of
  // the legacy checkpointed path untouched.
  const auto source = small_source();
  const auto run_once = [&](const std::string& log, bool with_store,
                            const std::string& store_dir) {
    common::Rng rng(37);
    FlEnvironment env(source, 4, 0.5, 0.25, rng);
    auto algo = make_algorithm("fedavg", env);
    RunOptions opts = chaos_options();
    opts.checkpoint_every = 2;
    opts.crash_at_rounds = {3};
    if (with_store) {
      store::StoreConfig sc;
      sc.dir = store_dir;
      opts.ckpt_store = sc;
    }
    {
      obs::JsonlWriter telemetry(log);
      opts.telemetry = &telemetry;
      run_federated(*algo, opts);
    }
    return global_weights(*algo);
  };

  ScratchDir dir("offswitch");
  const auto w_legacy = run_once(dir.file("legacy.jsonl"), false, "");
  const auto w_store =
      run_once(dir.file("store.jsonl"), true, dir.file("store"));
  ASSERT_EQ(w_legacy.size(), w_store.size());
  EXPECT_EQ(std::memcmp(w_legacy.data(), w_store.data(),
                        w_legacy.size() * sizeof(float)),
            0);
  // The store-on run only ever adds the gated "source" field to crash
  // records; the store-off bytes are the legacy bytes.
  const std::string legacy = slurp(dir.file("legacy.jsonl"));
  EXPECT_EQ(legacy.find("\"source\""), std::string::npos);
  EXPECT_EQ(legacy.find("\"type\":\"recovery\""), std::string::npos);
  EXPECT_NE(slurp(dir.file("store.jsonl")).find("\"source\":\"store\""),
            std::string::npos);
}

// ---------------------------------------------------------- krum auto-f ----

RunOptions krum_options() {
  RunOptions opts;
  opts.rounds = 6;
  opts.sample_ratio = 1.0;
  opts.eval_every = 3;
  opts.sampling_seed = 9;
  FaultConfig fc;
  fc.byzantine_clients = {1, 1, 0, 0, 0, 0, 0, 0};
  fc.attack_kind = AttackKind::kScale;
  fc.attack_scale = 5.0;
  fc.seed = 600;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kKrum;
  rc.krum_f = 1;       // deliberately under-provisioned for two attackers
  rc.multi_krum = 6;   // keep 6 of 8: exclusions concentrate on outliers
  opts.resilience = rc;
  return opts;
}

TEST(KrumAutoF, RepeatSuspectsRaiseTheByzantineBound) {
  const auto source = small_source();
  common::Rng rng(41);
  FlEnvironment env(source, 8, 0.5, 0.25, rng);
  auto algo = make_algorithm("fedavg", env);
  RunOptions opts = krum_options();
  opts.krum_auto_f = true;
  opts.checkpoint_every = 3;
  const auto result = run_federated(*algo, opts);

  // Both scale attackers are excluded round after round; the ledger must
  // push the estimate past the configured f=1 while respecting the Krum
  // viability clamp (participants - 3 = 5).
  EXPECT_GE(result.krum_f_estimate, 2u);
  EXPECT_LE(result.krum_f_estimate, 5u);
  EXPECT_GT(result.total_suspected, 0u);
  // The suspicion ledger rides the snapshot.
  EXPECT_NE(result.last_checkpoint.find("run/krum_ledger"), nullptr);
}

TEST(KrumAutoF, OffSwitchNeverTouchesTheConfiguredBound) {
  const auto source = small_source();
  common::Rng rng(41);
  FlEnvironment env(source, 8, 0.5, 0.25, rng);
  auto algo = make_algorithm("fedavg", env);
  RunOptions opts = krum_options();
  opts.checkpoint_every = 3;
  const auto result = run_federated(*algo, opts);
  EXPECT_EQ(result.krum_f_estimate, 1u);  // == configured krum_f
  EXPECT_EQ(result.last_checkpoint.find("run/krum_ledger"), nullptr);
}

TEST(KrumAutoF, ResumedRunKeepsTheLedgerBitIdentical) {
  // Checkpoint mid-run with a live suspicion ledger, restore into a fresh
  // algorithm, and finish: the auto-tuned run must match its uninterrupted
  // twin exactly, which only works if the ledger (and the re-tuned f)
  // survive the snapshot.
  const auto source = small_source();

  common::Rng rng1(41);
  FlEnvironment env1(source, 8, 0.5, 0.25, rng1);
  auto straight = make_algorithm("fedavg", env1);
  RunOptions full_opts = krum_options();
  full_opts.krum_auto_f = true;
  const auto full = run_federated(*straight, full_opts);

  common::Rng rng2(41);
  FlEnvironment env2(source, 8, 0.5, 0.25, rng2);
  auto first = make_algorithm("fedavg", env2);
  RunOptions leg1 = full_opts;
  leg1.rounds = 3;
  leg1.checkpoint_every = 3;
  const auto half = run_federated(*first, leg1);
  ASSERT_NE(half.last_checkpoint.find("run/krum_ledger"), nullptr);

  common::Rng rng3(41);
  FlEnvironment env3(source, 8, 0.5, 0.25, rng3);
  auto second = make_algorithm("fedavg", env3);
  RunOptions leg2 = full_opts;
  leg2.resume = &half.last_checkpoint;
  const auto resumed = run_federated(*second, leg2);

  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*second);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(full.krum_f_estimate, resumed.krum_f_estimate);
  EXPECT_EQ(full.final_accuracy, resumed.final_accuracy);
}

// ----------------------------------------------------- cross-run reuse --

TEST(CrossRunStoreReuse, FreshProcessResumesFromNewestGeneration) {
  // Two separate run_federated calls against the same checkpoint
  // directory stand in for two OS processes: leg 1 commits generations and
  // stops at round 2; leg 2 — fresh environment, fresh algorithm, no
  // explicit resume snapshot — finds the newest generation on disk via
  // resume_from_store and must finish bit-identical to the uninterrupted
  // straight run.
  const auto source = small_source();
  ScratchDir dir("cross_run");

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto straight = make_algorithm("fedavg", env1);
  const auto full = run_federated(*straight, chaos_options());

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto first = make_algorithm("fedavg", env2);
  RunOptions leg1 = chaos_options();
  leg1.rounds = 2;
  leg1.checkpoint_every = 1;
  store::StoreConfig sc;
  sc.dir = dir.file("store");
  leg1.ckpt_store = sc;
  const auto half = run_federated(*first, leg1);
  EXPECT_EQ(half.store_commits, 2u);

  common::Rng rng3(37);
  FlEnvironment env3(source, 4, 0.5, 0.25, rng3);
  auto second = make_algorithm("fedavg", env3);
  RunOptions leg2 = chaos_options();
  leg2.checkpoint_every = 1;
  leg2.ckpt_store = sc;
  leg2.resume_from_store = true;
  const auto resumed = run_federated(*second, leg2);

  EXPECT_EQ(resumed.recoveries_from_store, 1u);
  EXPECT_EQ(resumed.recovery_attempts_failed, 0u);
  // Rounds 1-2 were replayed from disk, not re-run: with eval_every=2 only
  // the round-4 evaluation happened in this leg.
  ASSERT_EQ(resumed.history.size(), 1u);
  EXPECT_EQ(resumed.history.front().round, 4u);
  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*second);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(full.final_accuracy, resumed.final_accuracy);
}

TEST(CrossRunStoreReuse, EmptyStoreIsAColdStart) {
  // resume_from_store against a directory with no generations must behave
  // exactly like a run without the flag: start at round 1, count nothing.
  const auto source = small_source();
  ScratchDir dir("cross_run_cold");

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto straight = make_algorithm("fedavg", env1);
  const auto full = run_federated(*straight, chaos_options());

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto cold = make_algorithm("fedavg", env2);
  RunOptions opts = chaos_options();
  store::StoreConfig sc;
  sc.dir = dir.file("store");
  opts.ckpt_store = sc;
  opts.resume_from_store = true;
  const auto result = run_federated(*cold, opts);

  EXPECT_EQ(result.recoveries_from_store, 0u);
  // All four rounds ran locally: both eval_every=2 evaluations happened.
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_EQ(result.history.front().round, 2u);
  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*cold);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(full.final_accuracy, result.final_accuracy);
}

}  // namespace
}  // namespace spatl::fl
