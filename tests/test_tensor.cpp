#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace spatl::tensor {
namespace {

TEST(Tensor, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ShapeConstructionZeroInitializes) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstruction) {
  Tensor t({3, 3}, 2.5f);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorRejectsMismatchedSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, MultiDimAccess) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
}

TEST(Tensor, ReshapePreservesDataAndRejectsBadShape) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t[7], 3.0f);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<float>{10, 20, 30, 40});
  Tensor c = a + b;
  EXPECT_EQ(c[0], 11.0f);
  EXPECT_EQ(c[3], 44.0f);
  c -= a;
  EXPECT_TRUE(allclose(c, b));
  Tensor d = a * b;
  EXPECT_EQ(d[2], 90.0f);
  d *= 0.5f;
  EXPECT_EQ(d[2], 45.0f);
}

TEST(Tensor, ArithmeticRejectsShapeMismatch) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, AddScaled) {
  Tensor a({3}, std::vector<float>{1, 1, 1});
  Tensor b({3}, std::vector<float>{2, 4, 6});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[2], 4.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(30.0f));
}

TEST(Tensor, RandnMatchesRequestedMoments) {
  common::Rng rng(3);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - t.mean()) * (t[i] - t.mean());
  }
  var /= double(t.numel());
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Tensor, RandUniformRespectsBounds) {
  common::Rng rng(5);
  Tensor t = Tensor::rand_uniform({1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
}

TEST(Tensor, AllcloseToleranceAndShape) {
  Tensor a({2}, std::vector<float>{1.0f, 2.0f});
  Tensor b({2}, std::vector<float>{1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(allclose(a, b));
  Tensor c({2}, std::vector<float>{1.1f, 2.0f});
  EXPECT_FALSE(allclose(a, c));
  Tensor d({1, 2});
  EXPECT_FALSE(allclose(a, d));
}

TEST(Tensor, ShapeToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

}  // namespace
}  // namespace spatl::tensor
