// Thread-count invariance: the same seeded computation produces
// bit-identical floats on pools of 1, 2, and 8 threads.
//
// This locks parallel_for's fixed-chunk contract (chunk boundaries depend
// only on the range and grain, never on pool size) end to end: first on the
// raw tensor/nn kernels, then on a full seeded federated run whose
// aggregated parameters must not move by a single bit when the machine's
// core count changes. SPATL's headline comparisons are replayed from seeds;
// a thread-count-dependent reduction would corrupt them invisibly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/runner.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/module.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace spatl {
namespace {

using tensor::Tensor;

// These suites lock the SCALAR reference backend: its outputs are the
// repository's bit-identity oracle. The cpu-simd backend has its own
// thread-count invariance lock in test_backend.cpp; pinning here keeps this
// suite meaningful even when SPATL_BACKEND is exported in the environment.
class ScalarBackendEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    tensor::set_active_backend(tensor::BackendKind::kScalar);
  }
};

const auto* const kPinScalar =
    ::testing::AddGlobalTestEnvironment(new ScalarBackendEnv);

/// Run `fn` with every parallel_for pinned to a pool of `threads` threads.
template <typename Fn>
auto with_pool_size(std::size_t threads, Fn&& fn) {
  common::ThreadPool pool(threads);
  common::ThreadPool::ScopedOverride scope(pool);
  return fn();
}

testing::AssertionResult bit_identical(const std::vector<float>& a,
                                       const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return testing::AssertionFailure() << "float payloads differ bitwise";
  }
  return testing::AssertionSuccess();
}

const std::vector<float>& storage(const Tensor& t) { return t.storage(); }

TEST(ThreadDeterminism, MatmulFamilyBitIdenticalAcrossPoolSizes) {
  const auto run = [] {
    common::Rng rng(123);
    const Tensor a = Tensor::randn({67, 123}, rng);
    const Tensor b = Tensor::randn({123, 45}, rng);
    const Tensor bt = Tensor::randn({45, 123}, rng);
    const Tensor at = Tensor::randn({123, 67}, rng);
    std::vector<float> flat;
    Tensor c;
    tensor::matmul(a, b, c);
    flat.insert(flat.end(), storage(c).begin(), storage(c).end());
    tensor::matmul_tn(at, b, c);
    flat.insert(flat.end(), storage(c).begin(), storage(c).end());
    tensor::matmul_nt(a, bt, c);
    flat.insert(flat.end(), storage(c).begin(), storage(c).end());
    return flat;
  };
  const auto one = with_pool_size(1, run);
  const auto two = with_pool_size(2, run);
  const auto eight = with_pool_size(8, run);
  EXPECT_TRUE(bit_identical(one, two));
  EXPECT_TRUE(bit_identical(one, eight));
}

TEST(ThreadDeterminism, ConvAndBatchNormBitIdenticalAcrossPoolSizes) {
  const auto run = [] {
    common::Rng rng(7);
    nn::Conv2d conv(3, 8, 3, 1, 1, /*bias=*/true);
    conv.init_params(rng);
    nn::BatchNorm2d bn(8);
    bn.init_params(rng);
    const Tensor x = Tensor::randn({4, 3, 12, 12}, rng);
    Tensor y = conv.forward(x, /*train=*/true);
    Tensor z = bn.forward(y, /*train=*/true);
    const Tensor dz = Tensor::randn(z.shape(), rng, 0.0f, 0.1f);
    Tensor dy = bn.backward(dz);
    Tensor dx = conv.backward(dy);
    std::vector<float> flat;
    for (const Tensor* t : {&z, &dx}) {
      flat.insert(flat.end(), storage(*t).begin(), storage(*t).end());
    }
    std::vector<nn::ParamView> views;
    conv.collect_params("conv.", views);
    bn.collect_params("bn.", views);
    const auto grads = nn::flatten_grads(views);
    flat.insert(flat.end(), grads.begin(), grads.end());
    flat.insert(flat.end(), storage(bn.running_mean()).begin(),
                storage(bn.running_mean()).end());
    flat.insert(flat.end(), storage(bn.running_var()).begin(),
                storage(bn.running_var()).end());
    return flat;
  };
  const auto one = with_pool_size(1, run);
  const auto two = with_pool_size(2, run);
  const auto eight = with_pool_size(8, run);
  EXPECT_TRUE(bit_identical(one, two));
  EXPECT_TRUE(bit_identical(one, eight));
}

TEST(ThreadDeterminism, FederatedRunBitIdenticalAcrossPoolSizes) {
  const auto run = [] {
    data::SyntheticConfig scfg;
    scfg.num_samples = 240;
    scfg.image_size = 8;
    scfg.num_classes = 10;
    scfg.noise_stddev = 0.2f;
    scfg.seed = 11;
    const auto source = data::make_synth_cifar(scfg);
    common::Rng rng(13);
    fl::FlEnvironment env(source, /*clients=*/4, /*beta=*/0.5,
                          /*val_fraction=*/0.25, rng);
    fl::FlConfig cfg;
    cfg.model.arch = "cnn2";
    cfg.model.in_channels = 3;
    cfg.model.input_size = 8;
    cfg.model.width_mult = 0.25;
    cfg.model.num_classes = 10;
    cfg.local.epochs = 1;
    cfg.local.batch_size = 32;
    cfg.local.lr = 0.05;
    cfg.seed = 21;
    fl::FedAvg algo(env, cfg);
    fl::RunOptions opts;
    opts.rounds = 3;
    opts.eval_every = 10;  // skip per-round eval; it does not mutate weights
    fl::run_federated(algo, opts);
    return nn::flatten_values(algo.global_model().all_params());
  };
  const auto one = with_pool_size(1, run);
  const auto two = with_pool_size(2, run);
  const auto eight = with_pool_size(8, run);
  EXPECT_TRUE(bit_identical(one, two));
  EXPECT_TRUE(bit_identical(one, eight));
}

}  // namespace
}  // namespace spatl
