// Shared test helpers: finite-difference gradient checking for Modules.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace spatl::testutil {

using nn::Tensor;

/// Scalar loss used by the gradient checker: loss = sum(output * probe)
/// with a fixed random probe, so d(loss)/d(output) = probe.
struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
};

/// Finite-difference check of d(loss)/d(input) and every parameter gradient
/// of `module` at the given input. float32 arithmetic limits precision, so
/// callers should accept ~1e-2 absolute error for deep compositions.
inline GradCheckResult grad_check(nn::Module& module, Tensor input,
                                  bool train = true, float eps = 1e-2f,
                                  std::uint64_t probe_seed = 7) {
  common::Rng probe_rng(probe_seed);
  Tensor out = module.forward(input, train);
  Tensor probe = Tensor::randn(out.shape(), probe_rng);

  module.zero_grad();
  // Re-run forward so cached state matches the analytic backward exactly
  // (stateful layers like Dropout must see the same mask: check callers).
  out = module.forward(input, train);
  Tensor dinput = module.backward(probe);

  GradCheckResult result;
  auto record = [&](double analytic, double numeric) {
    const double abs_err = std::fabs(analytic - numeric);
    const double denom =
        std::max(1.0, std::max(std::fabs(analytic), std::fabs(numeric)));
    result.max_abs_err = std::max(result.max_abs_err, abs_err);
    result.max_rel_err = std::max(result.max_rel_err, abs_err / denom);
  };

  auto loss_at = [&](const Tensor& x) {
    Tensor o = module.forward(x, train);
    double acc = 0.0;
    for (std::size_t i = 0; i < o.numel(); ++i) {
      acc += double(o[i]) * probe[i];
    }
    return acc;
  };

  // Central differences at two scales; if they disagree the point straddles
  // a ReLU/max kink where the derivative does not exist — skip it rather
  // than reporting a spurious failure (Richardson consistency check).
  auto numeric_or_skip = [&](auto&& eval, double* numeric) {
    const double d1 = (eval(eps) - eval(-eps)) / (2.0 * double(eps));
    const double d2 =
        (eval(eps / 2) - eval(-eps / 2)) / (2.0 * double(eps) / 2.0);
    const double scale = std::max({1.0, std::fabs(d1), std::fabs(d2)});
    if (std::fabs(d1 - d2) > 0.05 * scale) return false;
    *numeric = d2;
    return true;
  };

  // Check d(loss)/d(input) on a subsample of coordinates for speed.
  const std::size_t input_stride = std::max<std::size_t>(1, input.numel() / 24);
  for (std::size_t i = 0; i < input.numel(); i += input_stride) {
    double numeric = 0.0;
    const bool usable = numeric_or_skip(
        [&](float delta) {
          Tensor x = input;
          x[i] += delta;
          return loss_at(x);
        },
        &numeric);
    if (usable) record(double(dinput[i]), numeric);
  }

  // Check every parameter gradient (subsampled).
  for (auto& p : module.params()) {
    Tensor& w = *p.value;
    const Tensor& g = *p.grad;
    const std::size_t stride = std::max<std::size_t>(1, w.numel() / 16);
    for (std::size_t i = 0; i < w.numel(); i += stride) {
      const float orig = w[i];
      double numeric = 0.0;
      const bool usable = numeric_or_skip(
          [&](float delta) {
            w[i] = orig + delta;
            const double l = loss_at(input);
            w[i] = orig;
            return l;
          },
          &numeric);
      if (usable) record(double(g[i]), numeric);
    }
  }
  return result;
}

}  // namespace spatl::testutil
