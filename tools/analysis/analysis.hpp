// spatl_lint analysis passes. See DESIGN.md §14.
//
// A Project is the scanned source tree; each pass walks it and appends
// Findings. The driver (tools/spatl_lint.cpp) and the self-test
// (tests/test_analysis.cpp) share this library, so every rule is exercised
// both over the real repo and over the known-bad fixture corpus under
// tests/analysis_fixtures/.
//
// Passes:
//   legacy      the original per-file determinism/resource rules
//               (banned-random, chrono-now, fl-unordered, naked-new,
//               pragma-once, raw-thread, raw-stderr, async-wallclock,
//               telemetry-record-type, simd-isolation, store-bypass)
//   include     include-graph layering: the common→obs→…→fl layer DAG, with
//               cycles and downward includes rejected (include-layer,
//               include-cycle)
//   ckpt        checkpoint-coverage audit over // ckpt: annotations vs the
//               pack/unpack sites in src/fl (ckpt-unannotated-field,
//               ckpt-missing-pack, ckpt-missing-unpack)
//   rng         RNG stream discipline: the stream owner map plus the
//               conditional-draw schedule-shift smell (rng-stream-owner,
//               rng-conditional-draw, rng-backoff-outcome)
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/scanner.hpp"

namespace spatl::analysis {

struct Finding {
  std::string rule;
  std::string file;  // repo-relative, '/'-separated
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;  // matched a baseline entry
};

struct SourceFile {
  std::string rel;
  SourceText text;
  std::set<std::string> allowed;  // rules granted via spatl-lint: allow(...)
};

struct Project {
  std::string root;
  std::vector<SourceFile> files;  // sorted by rel
  std::vector<std::string> errors;  // unreadable paths
};

/// Scan every .cpp/.hpp under root/{src,tools,tests,bench,examples},
/// skipping any directory named "analysis_fixtures" (the known-bad corpus
/// must not fail the repo-wide run). Missing top-level directories are
/// simply absent, so a fixture tree holding only src/ loads fine.
Project load_project(const std::string& root);

/// Append `finding` unless the file opted out of the rule.
void emit(const SourceFile& f, std::vector<Finding>* out,
          const std::string& rule, std::size_t pos,
          const std::string& message);

void run_legacy_rules(const Project& project, std::vector<Finding>* out);
void run_include_graph(const Project& project, std::vector<Finding>* out);
void run_ckpt_coverage(const Project& project, std::vector<Finding>* out);
void run_rng_streams(const Project& project, std::vector<Finding>* out);

struct Options {
  bool legacy = true;
  bool include_graph = true;
  bool ckpt = true;
  bool rng = true;
};

struct Report {
  std::vector<Finding> findings;  // sorted (file, line, rule)
  std::size_t files_scanned = 0;
  std::size_t files_with_allow = 0;
};

Report analyze(const Project& project, const Options& options = {});

/// Baseline entries grandfather pre-existing findings. Matching is on
/// (rule, file, trimmed source line content) rather than line number, so a
/// baseline survives unrelated edits above the finding. Each entry
/// suppresses at most one finding per run (multiset semantics).
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string context;
};

std::vector<BaselineEntry> parse_baseline(const std::string& text);

/// Mark findings matched by the baseline as suppressed. Returns the number
/// of stale entries (baselined findings that no longer occur).
std::size_t apply_baseline(Report* report, const Project& project,
                           const std::vector<BaselineEntry>& baseline);

/// Serialize the report's unsuppressed findings in baseline format.
std::string format_baseline(const Report& report, const Project& project);

/// Minimal SARIF 2.1.0 document covering every finding (suppressed ones
/// carry "suppressions" so downstream viewers can filter them).
std::string to_sarif(const Report& report);

/// Per-rule (total, suppressed) counts.
std::map<std::string, std::pair<std::size_t, std::size_t>> rule_counts(
    const Report& report);

}  // namespace spatl::analysis
