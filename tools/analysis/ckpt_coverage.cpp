// Pass 2 — checkpoint-coverage audit.
//
// Convention (DESIGN.md §14): a struct/class whose state must survive
// checkpoint/resume carries a `// ckpt-struct: <prefix>` comment above its
// definition; every data member then needs either
//
//   // ckpt: <key>[, <key>...]   the checkpoint entry key(s) persisting it
//   // ckpt: none(<reason>)      an explicit opt-out, reason required
//
// on its own line or the line above. The pass cross-checks annotation keys
// against the literal keys actually packed in src/fl (first argument of the
// pack_floats/pack_u64s/pack_doubles/pack_rng helpers, plus the prefixes
// handed to nested save() calls) and unpacked again (at/find/load call
// arguments). Matching is substring in either direction, so an annotation
// may name either the full key or the prefix used at the pack site.
//
// Rules:
//   ckpt-unannotated-field  member of an audited struct with no annotation —
//                           the exact drift that silently breaks
//                           bit-identical resume
//   ckpt-missing-pack       annotated key with no pack site
//   ckpt-missing-unpack     packed key never read back on the restore path
#include <cctype>

#include "analysis/analysis.hpp"

namespace spatl::analysis {
namespace {

struct Site {
  const SourceFile* file = nullptr;
  std::size_t pos = 0;
  std::string text;
};

bool key_char(char c) {
  return ident_char(c) || c == '/';
}

/// Byte range of the balanced parens opening at `open` (code channel);
/// returns the position one past the matching ')'.
std::size_t paren_end(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return code.size();
}

/// End of the first argument: the first depth-1 comma, else the close paren.
std::size_t first_arg_end(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i;
    if (code[i] == ',' && depth == 1) return i;
  }
  return code.size();
}

void literals_in(const SourceFile& f, std::size_t begin, std::size_t end,
                 std::vector<Site>* out) {
  for (const auto& lit : f.text.strings) {
    if (lit.pos >= begin && lit.pos < end && !lit.text.empty()) {
      out->push_back({&f, lit.pos, lit.text});
    }
  }
}

void collect_sites(const SourceFile& f, std::vector<Site>* packs,
                   std::vector<Site>* prefixes, std::vector<Site>* unpacks) {
  const std::string& code = f.text.code;
  for (const char* token :
       {"pack_floats(", "pack_u64s(", "pack_doubles(", "pack_rng("}) {
    for (std::size_t p : find_token(code, token)) {
      const std::size_t open = p + std::string(token).size() - 1;
      literals_in(f, open, first_arg_end(code, open), packs);
    }
  }
  // Nested component save(out, "<prefix>") calls: the prefix covers the
  // component's annotations but the component packs its own keys, so the
  // prefix itself is not held to the unpack check.
  for (std::size_t p : find_token(code, "save(")) {
    const std::size_t open = p + 4;
    literals_in(f, open, paren_end(code, open), prefixes);
  }
  for (const char* token : {"at(", "find(", "load("}) {
    for (std::size_t p : find_token(code, token)) {
      const std::size_t open = p + std::string(token).size() - 1;
      literals_in(f, open, paren_end(code, open), unpacks);
    }
  }
}

bool covered(const std::string& key, const std::vector<Site>& sites) {
  for (const auto& s : sites) {
    if (key.find(s.text) != std::string::npos ||
        s.text.find(key) != std::string::npos) {
      return true;
    }
  }
  return false;
}

struct Annotation {
  bool present = false;
  bool opt_out = false;  // ckpt: none(...)
  std::size_t pos = 0;
  std::vector<std::string> keys;
};

/// Find a `// ckpt:` annotation within [begin, end) of the comments channel.
Annotation find_annotation(const std::string& comments, std::size_t begin,
                           std::size_t end) {
  Annotation a;
  const std::string marker = "ckpt:";
  for (std::size_t p = comments.find(marker, begin);
       p != std::string::npos && p < end; p = comments.find(marker, p + 1)) {
    if (p > 0 && (ident_char(comments[p - 1]) || comments[p - 1] == '-')) {
      continue;  // ckpt-struct: markers and prose like "xckpt:"
    }
    a.present = true;
    a.pos = p;
    std::size_t q = p + marker.size();
    while (q < comments.size() && comments[q] == ' ') ++q;
    while (q < comments.size() && key_char(comments[q])) {
      std::string key;
      while (q < comments.size() && key_char(comments[q])) key += comments[q++];
      if (key == "none") {
        a.opt_out = true;
        break;
      }
      a.keys.push_back(key);
      while (q < comments.size() && comments[q] == ' ') ++q;
      if (q >= comments.size() || comments[q] != ',') break;
      ++q;
      while (q < comments.size() && comments[q] == ' ') ++q;
    }
    break;
  }
  return a;
}

struct Member {
  std::string name;
  std::size_t pos = 0;  // position of the name
  std::size_t end = 0;  // one past the statement's last byte
};

/// Data members declared at depth 1 of the class body [open, close].
/// Function declarations/definitions, nested types, using/typedef/friend,
/// static constants, and operator members are not state and are skipped.
std::vector<Member> members_of(const std::string& code, std::size_t open,
                               std::size_t close) {
  std::vector<Member> members;
  std::vector<std::pair<std::size_t, std::size_t>> statements;
  int depth = 1;
  std::size_t start = open + 1;
  for (std::size_t i = open + 1; i <= close && i < code.size(); ++i) {
    const char c = code[i];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 1) {
        statements.push_back({start, i + 1});
        start = i + 1;
      } else if (depth == 0) {
        statements.push_back({start, i});
        break;
      }
    } else if (c == ';' && depth == 1) {
      statements.push_back({start, i});
      start = i + 1;
    }
  }

  for (const auto& [s_begin, s_end] : statements) {
    std::string stmt = code.substr(s_begin, s_end - s_begin);
    // Drop leading access labels so "private: int x_" reads as a member.
    std::size_t at = 0;
    for (;;) {
      while (at < stmt.size() &&
             std::isspace(static_cast<unsigned char>(stmt[at]))) {
        ++at;
      }
      bool stripped = false;
      for (const char* label : {"public", "protected", "private"}) {
        const std::string l(label);
        if (stmt.compare(at, l.size(), l) == 0 &&
            token_at(stmt, at, l)) {
          std::size_t colon = at + l.size();
          while (colon < stmt.size() &&
                 std::isspace(static_cast<unsigned char>(stmt[colon]))) {
            ++colon;
          }
          if (colon < stmt.size() && stmt[colon] == ':') {
            at = colon + 1;
            stripped = true;
          }
        }
      }
      if (!stripped) break;
    }
    stmt = stmt.substr(at);
    if (stmt.find_first_not_of(" \t\n\r") == std::string::npos) continue;

    bool skip = false;
    for (const char* kw : {"using", "typedef", "friend", "static_assert",
                           "template", "struct", "class", "enum", "static"}) {
      if (stmt.compare(0, std::string(kw).size(), kw) == 0 &&
          token_at(stmt, 0, kw)) {
        skip = true;
      }
    }
    if (!find_token(stmt, "operator").empty()) skip = true;
    if (skip) continue;

    // Classify by the first structural character: '(' means a function
    // (declaration, definition, or '= default/delete' special member);
    // '=' or '{' mean an initialized data member; none means a plain one.
    const std::size_t first = stmt.find_first_of("=({[");
    if (first != std::string::npos && stmt[first] == '(') continue;
    const std::size_t name_end =
        first == std::string::npos ? stmt.size() : first;
    std::size_t e = name_end;
    while (e > 0 && std::isspace(static_cast<unsigned char>(stmt[e - 1]))) {
      --e;
    }
    std::size_t b = e;
    while (b > 0 && ident_char(stmt[b - 1])) --b;
    if (b == e) continue;  // no identifier (e.g. stray tokens)
    members.push_back({stmt.substr(b, e - b), s_begin + at + b, s_end});
  }
  return members;
}

struct AuditedStruct {
  const SourceFile* file = nullptr;
  std::string name;
  std::vector<Member> fields;
};

void collect_structs(const SourceFile& f, std::vector<AuditedStruct>* out) {
  const std::string& code = f.text.code;
  const std::string marker = "ckpt-struct:";
  for (std::size_t p = f.text.comments.find(marker); p != std::string::npos;
       p = f.text.comments.find(marker, p + 1)) {
    std::size_t kw = std::string::npos;
    for (const char* k : {"struct", "class"}) {
      for (std::size_t q : find_token(code, k)) {
        if (q > p) {
          kw = std::min(kw, q);
          break;
        }
      }
    }
    if (kw == std::string::npos) continue;
    std::size_t name_begin =
        kw + (code.compare(kw, 6, "struct") == 0 ? 6 : 5);
    while (name_begin < code.size() && !ident_char(code[name_begin])) {
      ++name_begin;
    }
    std::size_t name_end = name_begin;
    while (name_end < code.size() && ident_char(code[name_end])) ++name_end;

    const std::size_t open = code.find('{', kw);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = code.size() - 1;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) {
        close = i;
        break;
      }
    }
    out->push_back({&f, code.substr(name_begin, name_end - name_begin),
                    members_of(code, open, close)});
  }
}

}  // namespace

void run_ckpt_coverage(const Project& project, std::vector<Finding>* out) {
  std::vector<Site> packs;     // pack_* keys — must be unpacked somewhere
  std::vector<Site> prefixes;  // nested save() prefixes — coverage only
  std::vector<Site> unpacks;
  std::vector<AuditedStruct> structs;
  for (const auto& f : project.files) {
    if (f.rel.rfind("src/fl", 0) == 0) {
      collect_sites(f, &packs, &prefixes, &unpacks);
    }
    if (f.rel.rfind("src/", 0) == 0) collect_structs(f, &structs);
  }

  std::vector<Site> pack_coverage = packs;
  pack_coverage.insert(pack_coverage.end(), prefixes.begin(), prefixes.end());

  for (const auto& s : structs) {
    for (const auto& m : s.fields) {
      // The annotation lives on the member's own statement line(s), or on
      // the line directly above when that line is comment-only — the two
      // windows never overlap a neighbouring member, so one field's keys
      // cannot satisfy another's audit.
      const auto& raw = s.file->text.raw;
      std::size_t line_begin = raw.rfind('\n', m.pos);
      line_begin = line_begin == std::string::npos ? 0 : line_begin;
      std::size_t stmt_line_end = raw.find('\n', m.end);
      if (stmt_line_end == std::string::npos) stmt_line_end = raw.size();

      Annotation a =
          find_annotation(s.file->text.comments, line_begin, stmt_line_end);
      if (!a.present && line_begin > 0) {
        std::size_t prev_begin = raw.rfind('\n', line_begin - 1);
        prev_begin = prev_begin == std::string::npos ? 0 : prev_begin;
        bool comment_only = true;
        for (std::size_t i = prev_begin; i < line_begin; ++i) {
          if (!std::isspace(
                  static_cast<unsigned char>(s.file->text.code[i]))) {
            comment_only = false;
            break;
          }
        }
        if (comment_only) {
          a = find_annotation(s.file->text.comments, prev_begin, line_begin);
        }
      }
      if (!a.present) {
        emit(*s.file, out, "ckpt-unannotated-field", m.pos,
             "field '" + m.name + "' of checkpoint-audited struct '" +
                 s.name +
                 "' has no // ckpt: annotation — name the checkpoint "
                 "key(s) persisting it or mark it // ckpt: none(<reason>); "
                 "unpersisted state breaks bit-identical resume");
        continue;
      }
      if (a.opt_out) continue;
      if (a.keys.empty()) {
        emit(*s.file, out, "ckpt-unannotated-field", a.pos,
             "empty // ckpt: annotation on '" + m.name + "' of '" + s.name +
                 "' — name the key(s) or use none(<reason>)");
        continue;
      }
      for (const auto& key : a.keys) {
        if (!covered(key, pack_coverage)) {
          emit(*s.file, out, "ckpt-missing-pack", a.pos,
               "annotation key '" + key + "' on '" + s.name + "::" + m.name +
                   "' matches no pack site in src/fl — the field is "
                   "declared persisted but nothing writes it");
        }
      }
    }
  }

  for (const auto& p : packs) {
    if (!covered(p.text, unpacks)) {
      emit(*p.file, out, "ckpt-missing-unpack", p.pos,
           "checkpoint key '" + p.text +
               "' is packed but never unpacked (no at/find/load site reads "
               "it back) — resume silently drops this state");
    }
  }
}

}  // namespace spatl::analysis
