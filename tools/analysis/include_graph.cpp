// Pass 1 — include-graph layering.
//
// Parses every #include "..." edge between project files and enforces the
// layer DAG: common → obs → tensor → nn → models → data → prune → graph →
// rl → fl core → {fl/store, fl/async, fl/churn} → {algorithm, compression,
// local_only, server_opt, runner} → core, with tools/bench/tests/examples
// free to include anything. An includer must sit at or above its includee's
// layer; a downward include (lower layer reaching up) or any cycle is
// reported with the offending edge path printed. Grandfathered edges live
// in the baseline file, not in the rank table.
#include <algorithm>
#include <filesystem>
#include <map>

#include "analysis/analysis.hpp"

namespace spatl::analysis {
namespace {

struct Layer {
  std::string name;
  int rank = 13;
};

Layer layer_of(const std::string& rel) {
  // Ordered prefix rules, most specific first. Anything unmatched (tools,
  // tests, bench, examples, new src/ trees) ranks on top and is
  // unconstrained as an includer.
  static const struct Rule {
    const char* prefix;
    const char* name;
    int rank;
  } kRules[] = {
      {"src/common/", "common", 0},
      {"src/obs/", "obs", 1},
      {"src/tensor/", "tensor", 2},
      {"src/nn/", "nn", 3},
      {"src/models/", "models", 4},
      {"src/data/", "data", 5},
      {"src/prune/", "prune", 6},
      {"src/graph/", "graph", 7},
      {"src/rl/", "rl", 8},
      {"src/fl/store/", "fl-store", 10},
      {"src/fl/async", "fl-async", 10},
      {"src/fl/churn", "fl-churn", 10},
      {"src/fl/algorithm", "fl-algorithms", 11},
      {"src/fl/compression", "fl-algorithms", 11},
      {"src/fl/local_only", "fl-algorithms", 11},
      {"src/fl/server_opt", "fl-algorithms", 11},
      {"src/fl/runner", "fl-runner", 11},
      {"src/fl/", "fl", 9},
      {"src/core/", "core", 12},
  };
  for (const auto& rule : kRules) {
    if (rel.rfind(rule.prefix, 0) == 0) return {rule.name, rule.rank};
  }
  return {"top", 13};
}

struct IncludeEdge {
  std::size_t to = 0;   // index of the included project file
  std::size_t pos = 0;  // byte position of the directive in the includer
  std::string path;     // the quoted path as written
};

/// The quoted includes of `f`, resolved against the project file set.
/// Angle-bracket includes carry no string literal and are skipped, which is
/// exactly right: system headers are outside the layer contract.
std::vector<IncludeEdge> edges_of(
    const SourceFile& f, const std::map<std::string, std::size_t>& index) {
  namespace fs = std::filesystem;
  std::vector<IncludeEdge> edges;
  for (std::size_t p : find_token(f.text.code, "include")) {
    std::size_t q = p;
    while (q > 0 && (f.text.code[q - 1] == ' ' || f.text.code[q - 1] == '\t')) {
      --q;
    }
    if (q == 0 || f.text.code[q - 1] != '#') continue;
    const std::size_t eol = f.text.code.find('\n', p);
    for (const auto& lit : f.text.strings) {
      if (lit.pos < p || lit.pos >= eol) continue;
      // Candidate resolutions: the -Isrc/-Itools roots, then
      // includer-relative.
      const fs::path self(f.rel);
      const fs::path candidates[] = {fs::path("src") / lit.text,
                                     fs::path("tools") / lit.text,
                                     self.parent_path() / lit.text};
      for (const fs::path& cand : candidates) {
        const auto it = index.find(cand.lexically_normal().generic_string());
        if (it != index.end()) {
          edges.push_back({it->second, p, lit.text});
          break;
        }
      }
      break;  // only the first literal on the line is the include path
    }
  }
  return edges;
}

struct CycleFinder {
  const Project& project;
  const std::vector<std::vector<IncludeEdge>>& adj;
  std::vector<Finding>* out;
  std::vector<int> color;           // 0 white, 1 on stack, 2 done
  std::vector<std::size_t> stack;   // current DFS path (file indices)
  std::set<std::vector<std::string>> reported;  // canonicalized cycles

  void visit(std::size_t u) {
    color[u] = 1;
    stack.push_back(u);
    for (const auto& e : adj[u]) {
      if (color[e.to] == 0) {
        visit(e.to);
      } else if (color[e.to] == 1) {
        report(u, e);
      }
    }
    stack.pop_back();
    color[u] = 2;
  }

  void report(std::size_t from, const IncludeEdge& back) {
    const auto begin =
        std::find(stack.begin(), stack.end(), back.to);
    std::vector<std::string> cycle;
    for (auto it = begin; it != stack.end(); ++it) {
      cycle.push_back(project.files[*it].rel);
    }
    // Canonicalize: rotate the smallest member to the front so one cycle
    // reports once no matter where the DFS entered it.
    auto canon = cycle;
    std::rotate(canon.begin(),
                std::min_element(canon.begin(), canon.end()), canon.end());
    if (!reported.insert(canon).second) return;
    std::string path;
    for (const auto& rel : cycle) path += rel + " -> ";
    path += cycle.front();
    emit(project.files[from], out, "include-cycle", back.pos,
         "include cycle: " + path +
             " — break the loop with a forward declaration or by moving "
             "the shared type down a layer");
  }
};

}  // namespace

void run_include_graph(const Project& project, std::vector<Finding>* out) {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    index[project.files[i].rel] = i;
  }

  std::vector<std::vector<IncludeEdge>> adj(project.files.size());
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    const SourceFile& f = project.files[i];
    adj[i] = edges_of(f, index);
    const Layer from = layer_of(f.rel);
    for (const auto& e : adj[i]) {
      const Layer to = layer_of(project.files[e.to].rel);
      if (from.rank < to.rank) {
        emit(f, out, "include-layer", e.pos,
             "layer '" + from.name + "' file includes '" + to.name +
                 "' header \"" + e.path + "\" (" + f.rel + " -> " +
                 project.files[e.to].rel +
                 ") — the layer DAG places " + to.name + " above " +
                 from.name + "; invert the dependency or move the shared "
                 "piece down");
      }
    }
  }

  CycleFinder finder{project, adj, out, {}, {}, {}};
  finder.color.assign(project.files.size(), 0);
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    if (finder.color[i] == 0) finder.visit(i);
  }
}

}  // namespace spatl::analysis
