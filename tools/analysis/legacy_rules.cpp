// The original per-file determinism/resource rules, ported onto the shared
// scanner. Rule semantics are unchanged from the single-file spatl_lint;
// see the driver's usage text for the one-line description of each.
#include <cctype>

#include "analysis/analysis.hpp"

namespace spatl::analysis {
namespace {

void check_banned_random(const SourceFile& f, std::vector<Finding>* out) {
  for (const char* token : {"rand(", "srand(", "time("}) {
    for (std::size_t p : find_token(f.text.code, token)) {
      emit(f, out, "banned-random", p,
           std::string(token) +
               ") call — use a seeded common::Rng so runs replay");
    }
  }
  for (std::size_t p : find_token(f.text.code, "random_device")) {
    emit(f, out, "banned-random", p,
         "std::random_device — nondeterministic entropy source");
  }
}

void check_chrono_now(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/common/timer.hpp") return;
  for (std::size_t p : find_token(f.text.code, "now(")) {
    if (p >= 2 && f.text.code[p - 1] == ':' && f.text.code[p - 2] == ':') {
      emit(f, out, "chrono-now", p,
           "clock ::now() outside common/timer.hpp — wall-clock reads "
           "break reproducibility");
    }
  }
}

void check_fl_unordered(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel.rfind("src/fl/", 0) != 0) return;
  for (const char* token : {"unordered_map", "unordered_set"}) {
    for (std::size_t p : find_token(f.text.code, token)) {
      emit(f, out, "fl-unordered", p,
           std::string("std::") + token +
               " in an aggregation path — hash-order iteration reorders "
               "float reductions; use std::map/std::vector");
    }
  }
}

void check_naked_new(const SourceFile& f, std::vector<Finding>* out) {
  for (std::size_t p : find_token(f.text.code, "new")) {
    emit(f, out, "naked-new", p,
         "raw new — use containers or std::make_unique");
  }
  for (std::size_t p : find_token(f.text.code, "delete")) {
    std::size_t q = p;
    while (q > 0 &&
           std::isspace(static_cast<unsigned char>(f.text.code[q - 1]))) {
      --q;
    }
    if (q > 0 && f.text.code[q - 1] == '=') continue;  // deleted member fn
    emit(f, out, "naked-new", p, "raw delete — ownership must be RAII-managed");
  }
}

void check_pragma_once(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel.size() < 4 || f.rel.substr(f.rel.size() - 4) != ".hpp") return;
  if (f.text.raw.find("#pragma once") == std::string::npos) {
    emit(f, out, "pragma-once", 0, "header is missing #pragma once");
  }
}

void check_raw_thread(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/common/thread_pool.hpp" ||
      f.rel == "src/common/thread_pool.cpp") {
    return;
  }
  for (const char* token : {"thread", "jthread"}) {
    for (std::size_t p : find_token(f.text.code, token)) {
      if (p >= 5 && f.text.code.compare(p - 5, 5, "std::") == 0) {
        emit(f, out, "raw-thread", p,
             std::string("std::") + token +
                 " outside common/thread_pool — route parallelism through "
                 "ThreadPool/parallel_for");
      }
    }
  }
}

void check_raw_stderr(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel == "src/common/log.cpp") return;    // the sanctioned log sink
  if (f.rel.rfind("src/obs/", 0) == 0) return;  // telemetry exporters
  for (std::size_t p : find_token(f.text.code, "stderr")) {
    emit(f, out, "raw-stderr", p,
         "raw stderr write — route diagnostics through common/log.hpp "
         "(log_warn/log_error)");
  }
  for (std::size_t p : find_token(f.text.code, "cerr")) {
    if (p >= 5 && f.text.code.compare(p - 5, 5, "std::") == 0) {
      emit(f, out, "raw-stderr", p,
           "std::cerr — route diagnostics through common/log.hpp "
           "(log_warn/log_error)");
    }
  }
}

void check_async_wallclock(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel.rfind("src/fl/async", 0) != 0) return;
  // Stricter than chrono-now: in the semi-async buffer even naming a clock
  // type is banned, because any time source other than the fault model's
  // virtual compute_time would break bit-reproducible buffered runs.
  for (const char* token : {"chrono", "steady_clock", "system_clock",
                            "high_resolution_clock", "time_point",
                            "sleep_for"}) {
    for (std::size_t p : find_token(f.text.code, token)) {
      emit(f, out, "async-wallclock", p,
           std::string(token) +
               " in src/fl/async — the straggler buffer runs on virtual "
               "time only (FaultModel compute_time draws)");
    }
  }
  // The include path is a string literal (blanked in the code channel), so
  // match it against the extracted literals instead.
  for (const auto& lit : f.text.strings) {
    if (lit.text == "common/timer.hpp") {
      emit(f, out, "async-wallclock", lit.pos,
           "common/timer.hpp include in src/fl/async — timers are wall "
           "clocks; key buffering on simulated compute_time instead");
    }
  }
}

void check_telemetry_record_type(const SourceFile& f,
                                 std::vector<Finding>* out) {
  // Every JSONL record the product emits starts with add("type", "<tag>");
  // downstream consumers (spatl_report, the JsonChecker suites) key on the
  // closed tag set, so an unknown literal here is schema drift at the
  // source. Tests are exempt — they feed exporters synthetic types on
  // purpose ("probe").
  if (f.rel.rfind("src/", 0) != 0 && f.rel.rfind("tools/", 0) != 0 &&
      f.rel.rfind("bench/", 0) != 0) {
    return;
  }
  static const std::set<std::string> kRecordTypes = {
      "round", "metrics", "alert", "crash", "recovery", "flight"};
  const auto& lits = f.text.strings;
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i].text != "type") continue;
    // The key literal must be the first argument of an add( call. The code
    // channel keeps the quotes, so the opening quote sits at lits[i].pos.
    std::size_t q = lits[i].pos;
    while (q > 0 &&
           std::isspace(static_cast<unsigned char>(f.text.code[q - 1]))) {
      --q;
    }
    if (q < 4 || f.text.code.compare(q - 4, 4, "add(") != 0 ||
        !token_at(f.text.code, q - 4, "add(")) {
      continue;
    }
    // Between the key and the value: closing quote, comma, opening quote of
    // the very next literal. Anything else (a variable, an expression) is
    // outside this rule's reach.
    std::size_t r = f.text.code.find('"', lits[i].pos + 1);
    if (r == std::string::npos) continue;
    ++r;
    while (r < f.text.code.size() &&
           std::isspace(static_cast<unsigned char>(f.text.code[r]))) {
      ++r;
    }
    if (r >= f.text.code.size() || f.text.code[r] != ',') continue;
    ++r;
    while (r < f.text.code.size() &&
           std::isspace(static_cast<unsigned char>(f.text.code[r]))) {
      ++r;
    }
    if (r != lits[i + 1].pos) continue;  // value is not a string literal
    if (kRecordTypes.count(lits[i + 1].text) == 0) {
      emit(f, out, "telemetry-record-type", lits[i + 1].pos,
           "unknown telemetry record type \"" + lits[i + 1].text +
               "\" — the JSONL schema covers round/metrics/alert/crash/"
               "recovery/flight; extend the set (and spatl_report) "
               "deliberately, not by typo");
    }
  }
}

void check_simd_isolation(const SourceFile& f, std::vector<Finding>* out) {
  // Vector intrinsics are confined to src/tensor/simd/ — the only directory
  // whose translation units are built with ISA flags and dispatched to
  // behind a runtime CPU check (tensor/backend.hpp). An intrinsics header
  // anywhere else either SIGILLs older CPUs (the TU lacks -mavx2) or leaks
  // ISA flags into portable code; both are wrong. Angle-bracket include
  // paths are not string literals, so the scanner leaves them in the code
  // channel where find_token sees them.
  if (f.rel.rfind("src/tensor/simd/", 0) == 0) return;  // the sanctioned home
  for (const char* token :
       {"immintrin", "x86intrin", "xmmintrin", "emmintrin", "smmintrin",
        "avxintrin", "avx2intrin", "avx512fintrin", "arm_neon"}) {
    for (std::size_t p : find_token(f.text.code, token)) {
      emit(f, out, "simd-isolation", p,
           std::string(token) +
               " outside src/tensor/simd/ — vector intrinsics live behind "
               "the ComputeContext seam (tensor/backend.hpp) so portable "
               "TUs never carry ISA-specific code");
    }
  }
}

void check_store_bypass(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel.rfind("src/fl/", 0) != 0) return;
  if (f.rel.rfind("src/fl/store/", 0) == 0) return;  // the sanctioned layer
  for (const char* token : {"save_tensors", "load_tensors", "write_tensors",
                            "read_tensors"}) {
    for (std::size_t p : find_token(f.text.code, token)) {
      emit(f, out, "store-bypass", p,
           std::string(token) +
               " in src/fl outside fl/store — route run-state persistence "
               "through the durable store (atomic commit + CRC "
               "verification + retention)");
    }
  }
}

}  // namespace

void run_legacy_rules(const Project& project, std::vector<Finding>* out) {
  for (const auto& f : project.files) {
    check_banned_random(f, out);
    check_chrono_now(f, out);
    check_fl_unordered(f, out);
    check_naked_new(f, out);
    check_pragma_once(f, out);
    check_raw_thread(f, out);
    check_raw_stderr(f, out);
    check_async_wallclock(f, out);
    check_telemetry_record_type(f, out);
    check_simd_isolation(f, out);
    check_store_bypass(f, out);
  }
}

}  // namespace spatl::analysis
