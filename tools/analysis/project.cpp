#include "analysis/analysis.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace spatl::analysis {

namespace fs = std::filesystem;

Project load_project(const std::string& root) {
  Project project;
  project.root = root;
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    fs::recursive_directory_iterator it(dir), end;
    while (it != end) {
      if (it->is_directory() &&
          it->path().filename() == "analysis_fixtures") {
        it.disable_recursion_pending();
      } else if (it->is_regular_file()) {
        const std::string ext = it->path().extension().string();
        if (ext == ".cpp" || ext == ".hpp") paths.push_back(it->path());
      }
      ++it;
    }
  }
  std::sort(paths.begin(), paths.end());

  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      project.errors.push_back(path.string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile file;
    file.rel = fs::relative(path, root).generic_string();
    file.text = scan_source(buf.str());
    file.allowed = allowed_rules(file.text.comments);
    project.files.push_back(std::move(file));
  }
  return project;
}

void emit(const SourceFile& f, std::vector<Finding>* out,
          const std::string& rule, std::size_t pos,
          const std::string& message) {
  if (f.allowed.count(rule)) return;
  out->push_back({rule, f.rel, line_of(f.text.raw, pos), message, false});
}

Report analyze(const Project& project, const Options& options) {
  Report report;
  report.files_scanned = project.files.size();
  for (const auto& f : project.files) {
    if (!f.allowed.empty()) ++report.files_with_allow;
  }
  if (options.legacy) run_legacy_rules(project, &report.findings);
  if (options.include_graph) run_include_graph(project, &report.findings);
  if (options.ckpt) run_ckpt_coverage(project, &report.findings);
  if (options.rng) run_rng_streams(project, &report.findings);
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return report;
}

}  // namespace spatl::analysis
