// Reporting: the baseline/suppression mechanism and the SARIF 2.1.0 export.
//
// Baseline entries are keyed on (rule, file, trimmed source line content)
// rather than line numbers, so grandfathered findings survive unrelated
// edits elsewhere in the file; each entry suppresses at most one finding
// per run. The SARIF document carries every finding — suppressed ones are
// marked with a `suppressions` element so viewers can filter rather than
// lose them.
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "analysis/analysis.hpp"

namespace spatl::analysis {
namespace {

/// Trimmed content of 1-based line `number` of `text`.
std::string line_by_number(const std::string& text, std::size_t number) {
  std::size_t begin = 0;
  for (std::size_t n = 1; n < number && begin != std::string::npos; ++n) {
    begin = text.find('\n', begin);
    if (begin != std::string::npos) ++begin;
  }
  if (begin == std::string::npos) return "";
  return line_text(text, begin);
}

std::string finding_context(const Finding& finding, const Project& project) {
  for (const auto& f : project.files) {
    if (f.rel == finding.file) {
      return line_by_number(f.text.raw, finding.line);
    }
  }
  return "";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const std::vector<std::pair<const char*, const char*>>& rule_table() {
  static const std::vector<std::pair<const char*, const char*>> kRules = {
      {"banned-random", "nondeterministic randomness source"},
      {"chrono-now", "wall-clock read outside common/timer.hpp"},
      {"fl-unordered", "hash-ordered container in an aggregation path"},
      {"naked-new", "raw new/delete outside RAII"},
      {"pragma-once", "header missing #pragma once"},
      {"raw-thread", "std::thread outside common/thread_pool"},
      {"raw-stderr", "stderr write bypassing common/log"},
      {"async-wallclock", "clock machinery in the virtual-time buffer"},
      {"simd-isolation", "vector intrinsics outside src/tensor/simd/"},
      {"store-bypass", "tensor I/O around the durable store layer"},
      {"include-layer", "include edge against the layer DAG"},
      {"include-cycle", "include cycle between project files"},
      {"ckpt-unannotated-field", "audited struct field without a ckpt tag"},
      {"ckpt-missing-pack", "ckpt key annotation with no pack site"},
      {"ckpt-missing-unpack", "packed ckpt key never read back"},
      {"rng-stream-owner", "RNG stream named outside its owning module"},
      {"rng-conditional-draw", "keyed RNG draw inside a conditional branch"},
      {"rng-backoff-outcome", "backoff stream feeding a delivery outcome"},
  };
  return kRules;
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Whole-line comments only: context fields routinely contain '#'
    // (e.g. grandfathered #include lines).
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    BaselineEntry e;
    if (!(fields >> e.rule >> e.file)) continue;
    std::string rest;
    std::getline(fields, rest);
    const std::size_t bar = rest.find('|');
    if (bar != std::string::npos) rest = rest.substr(bar + 1);
    const std::size_t begin = rest.find_first_not_of(" \t");
    const std::size_t end = rest.find_last_not_of(" \t");
    e.context = begin == std::string::npos
                    ? ""
                    : rest.substr(begin, end - begin + 1);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::size_t apply_baseline(Report* report, const Project& project,
                           const std::vector<BaselineEntry>& baseline) {
  std::map<std::tuple<std::string, std::string, std::string>, std::size_t>
      pool;
  for (const auto& e : baseline) ++pool[{e.rule, e.file, e.context}];
  for (auto& finding : report->findings) {
    const auto key = std::make_tuple(finding.rule, finding.file,
                                     finding_context(finding, project));
    const auto it = pool.find(key);
    if (it != pool.end() && it->second > 0) {
      --it->second;
      finding.suppressed = true;
    }
  }
  std::size_t stale = 0;
  for (const auto& [key, count] : pool) stale += count;
  return stale;
}

std::string format_baseline(const Report& report, const Project& project) {
  std::string out;
  for (const auto& finding : report.findings) {
    if (finding.suppressed) continue;
    out += finding.rule + " " + finding.file + " | " +
           finding_context(finding, project) + "\n";
  }
  return out;
}

std::string to_sarif(const Report& report) {
  std::ostringstream out;
  out << "{\"version\":\"2.1.0\",\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{"
         "\"tool\":{\"driver\":{\"name\":\"spatl_lint\","
         "\"informationUri\":\"https://example.invalid/spatl\",\"rules\":[";
  bool first = true;
  for (const auto& [id, text] : rule_table()) {
    out << (first ? "" : ",") << "{\"id\":\"" << id
        << "\",\"shortDescription\":{\"text\":\"" << json_escape(text)
        << "\"}}";
    first = false;
  }
  out << "]}},\"results\":[";
  first = true;
  for (const auto& f : report.findings) {
    out << (first ? "" : ",") << "{\"ruleId\":\"" << json_escape(f.rule)
        << "\",\"level\":\"error\",\"message\":{\"text\":\""
        << json_escape(f.message)
        << "\"},\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\""
        << json_escape(f.file) << "\"},\"region\":{\"startLine\":" << f.line
        << "}}}]";
    if (f.suppressed) {
      out << ",\"suppressions\":[{\"kind\":\"external\"}]";
    }
    out << "}";
    first = false;
  }
  out << "]}]}\n";
  return out.str();
}

std::map<std::string, std::pair<std::size_t, std::size_t>> rule_counts(
    const Report& report) {
  std::map<std::string, std::pair<std::size_t, std::size_t>> counts;
  for (const auto& f : report.findings) {
    auto& entry = counts[f.rule];
    ++entry.first;
    if (f.suppressed) ++entry.second;
  }
  return counts;
}

}  // namespace spatl::analysis
