// Pass 3 — RNG stream discipline.
//
// The keyed_rng(seed, round, client, Stream::k...) streams make every
// stochastic decision order-independent, but only while two contracts hold:
// each stream is drawn from inside its owning module only (the owner map
// below), and draws happen unconditionally relative to the stream key —
// a draw reached through a data-dependent branch shifts the draw schedule
// of everything after it, the exact smell the semi-async and churn designs
// keep out of their hot paths.
//
// Rules:
//   rng-stream-owner      a Stream::k constant named outside its owning
//                         file(s)
//   rng-conditional-draw  a draw on a keyed_rng-initialized generator that
//                         executes only inside an if/else/switch branch
//                         opened after the generator's declaration (for /
//                         while loops are fine — iteration counts are part
//                         of the keyed schedule)
//   rng-backoff-outcome   a kBackoff generator feeding a bernoulli — the
//                         backoff stream shapes wait times, never
//                         delivered/dropped outcomes
#include <cctype>

#include "analysis/analysis.hpp"

namespace spatl::analysis {
namespace {

const std::set<std::string>& draw_methods() {
  static const std::set<std::string> kMethods = {
      "next",         "uniform",     "uniform_float",
      "uniform_index", "uniform_int", "bernoulli",
      "normal",       "normal_float", "gamma",
      "dirichlet",    "categorical", "shuffle",
      "sample_without_replacement",  "fork"};
  return kMethods;
}

struct Owner {
  const char* stream;
  std::vector<const char*> prefixes;
};

const std::vector<Owner>& owner_map() {
  static const std::vector<Owner> kOwners = {
      {"Stream::kFate", {"src/fl/fault."}},
      {"Stream::kLoss", {"src/fl/fault."}},
      {"Stream::kCorrupt", {"src/fl/fault."}},
      {"Stream::kByzantine", {"src/fl/fault."}},
      {"Stream::kAttack", {"src/fl/fault."}},
      {"Stream::kBackoff", {"src/fl/fault."}},
      {"Stream::kStorage", {"src/fl/fault.", "src/fl/store/"}},
      {"Stream::kJoin", {"src/fl/churn."}},
      {"Stream::kLeave", {"src/fl/churn."}},
      {"Stream::kReturn", {"src/fl/churn."}},
  };
  return kOwners;
}

std::size_t skip_ws_back(const std::string& code, std::size_t j) {
  while (j > 0 && std::isspace(static_cast<unsigned char>(code[j - 1]))) --j;
  return j;
}

std::string ident_ending_at(const std::string& code, std::size_t j) {
  std::size_t b = j;
  while (b > 0 && ident_char(code[b - 1])) --b;
  return code.substr(b, j - b);
}

/// True when the '{' at `pos` opens a branch taken conditionally: an
/// if/else/switch body or a case/default label block.
bool conditional_block(const std::string& code, std::size_t pos) {
  std::size_t j = skip_ws_back(code, pos);
  if (j == 0) return false;
  const char c = code[j - 1];
  if (c == ')') {
    int depth = 0;
    std::size_t i = j;
    while (i > 0) {
      --i;
      if (code[i] == ')') ++depth;
      if (code[i] == '(' && --depth == 0) break;
    }
    const std::string kw = ident_ending_at(code, skip_ws_back(code, i));
    return kw == "if" || kw == "switch";
  }
  if (c == ':') return !(j >= 2 && code[j - 2] == ':');  // case/default label
  return ident_ending_at(code, j) == "else";
}

std::size_t matching_paren_end(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return code.size();
}

/// The variable a `x = keyed_rng(...)` initialization assigns to; empty for
/// temporaries, return values, and call arguments.
std::string assigned_var(const std::string& code, std::size_t p) {
  std::size_t j = p;
  while (j > 0) {
    const char c = code[j - 1];
    if (c == '=') {
      if (j >= 2) {
        const char d = code[j - 2];
        if (d == '=' || d == '!' || d == '<' || d == '>') return "";
      }
      return ident_ending_at(code, skip_ws_back(code, j - 1));
    }
    if (c == ';' || c == '{' || c == '}' || c == '(') return "";
    --j;
  }
  return "";
}

/// The Stream::k constant inside [begin, end), or empty when the stream is
/// a runtime value.
std::string stream_in(const std::string& code, std::size_t begin,
                      std::size_t end) {
  const std::size_t p = code.find("Stream::k", begin);
  if (p == std::string::npos || p >= end) return "";
  std::size_t q = p + std::string("Stream::").size();
  while (q < code.size() && ident_char(code[q])) ++q;
  return code.substr(p, q - p);
}

void check_keyed_draws(const SourceFile& f, std::vector<Finding>* out) {
  const std::string& code = f.text.code;
  for (std::size_t p : find_token(code, "keyed_rng(")) {
    const std::size_t call_open = p + std::string("keyed_rng").size();
    const std::size_t call_end = matching_paren_end(code, call_open);
    const std::string stream = stream_in(code, call_open, call_end);
    const std::string var = assigned_var(code, p);
    if (var.empty() || var == "return") continue;

    // End of the declaring statement: first top-level ';' after the call.
    std::size_t i = call_end;
    int parens = 0;
    while (i < code.size()) {
      if (code[i] == '(') ++parens;
      if (code[i] == ')') --parens;
      if (code[i] == ';' && parens == 0) break;
      ++i;
    }

    // Walk the rest of the enclosing scope: every brace opened after the
    // declaration goes on a stack tagged conditional or not; a draw with a
    // conditional frame below it is schedule-shifting.
    std::vector<bool> frames;
    while (++i < code.size()) {
      const char c = code[i];
      if (c == '{') {
        frames.push_back(conditional_block(code, i));
      } else if (c == '}') {
        if (frames.empty()) break;  // left the generator's scope
        frames.pop_back();
      } else if (c == var[0] && code.compare(i, var.size(), var) == 0 &&
                 token_at(code, i, var)) {
        std::size_t q = i + var.size();
        while (q < code.size() &&
               std::isspace(static_cast<unsigned char>(code[q]))) {
          ++q;
        }
        std::string method;
        if (q < code.size() && code[q] == '.') {
          ++q;
          while (q < code.size() && ident_char(code[q])) method += code[q++];
          if (q >= code.size() || code[q] != '(') method.clear();
        } else if (q < code.size() && code[q] == '(') {
          method = "operator()";
        }
        const bool draws = method == "operator()" ||
                           draw_methods().count(method) > 0;
        if (draws) {
          bool conditional = false;
          for (const bool frame : frames) conditional = conditional || frame;
          if (conditional) {
            emit(f, out, "rng-conditional-draw", i,
                 "draw '" + var + (method == "operator()" ? "()" : "." + method + "()") +
                     "' on keyed stream " +
                     (stream.empty() ? std::string("<runtime>") : stream) +
                     " executes only inside a conditional branch — the "
                     "branch shifts the stream's draw schedule; hoist the "
                     "draw or fork a sub-stream");
          }
          if (stream == "Stream::kBackoff" && method == "bernoulli") {
            emit(f, out, "rng-backoff-outcome", i,
                 "kBackoff stream feeding a bernoulli outcome — backoff "
                 "randomness shapes wait times only; delivery outcomes "
                 "belong to kLoss/kFate");
          }
        }
        i += var.size() - 1;
      }
    }
  }
}

}  // namespace

void run_rng_streams(const Project& project, std::vector<Finding>* out) {
  for (const auto& f : project.files) {
    if (f.rel.rfind("src/", 0) != 0) continue;
    for (const auto& owner : owner_map()) {
      bool owned = false;
      for (const char* prefix : owner.prefixes) {
        if (f.rel.rfind(prefix, 0) == 0) owned = true;
      }
      if (owned) continue;
      for (std::size_t p : find_token(f.text.code, owner.stream)) {
        std::string allowed;
        for (const char* prefix : owner.prefixes) {
          allowed += std::string(allowed.empty() ? "" : ", ") + prefix + "*";
        }
        emit(f, out, "rng-stream-owner", p,
             std::string(owner.stream) + " referenced outside its owner (" +
                 allowed +
                 ") — streams are drawn only from their owning module so "
                 "draw schedules stay private to one subsystem");
      }
    }
    check_keyed_draws(f, out);
  }
}

}  // namespace spatl::analysis
