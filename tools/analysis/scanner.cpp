#include "analysis/scanner.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace spatl::analysis {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

/// True when the '"' at `pos` opens a raw string literal: it is preceded by
/// an R (optionally prefixed u8/u/U/L) that begins its own token, as in
/// R"(...)", u8R"tag(...)tag".
bool raw_string_start(const std::string& in, std::size_t pos) {
  if (pos == 0 || in[pos - 1] != 'R') return false;
  std::size_t start = pos - 1;
  if (start > 0) {
    const char p = in[start - 1];
    if (p == '8' && start > 1 && in[start - 2] == 'u') {
      start -= 2;
    } else if (p == 'u' || p == 'U' || p == 'L') {
      start -= 1;
    }
  }
  return start == 0 || !ident_char(in[start - 1]);
}

/// True when the '\'' at `pos` is a digit separator (1'000'000, 0xFF'FF):
/// the identifier-ish token it abuts starts with a digit, so it cannot open
/// a character literal.
bool digit_separator(const std::string& in, std::size_t pos) {
  std::size_t start = pos;
  while (start > 0 && ident_char(in[start - 1])) --start;
  return start < pos && std::isdigit(static_cast<unsigned char>(in[start]));
}

}  // namespace

SourceText scan_source(std::string raw) {
  SourceText out;
  out.raw = std::move(raw);
  const std::string& in = out.raw;

  // Prefill both derived channels with blanks, keeping every newline so byte
  // positions in any channel land on the same line.
  out.code.assign(in.size(), ' ');
  out.comments.assign(in.size(), ' ');
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\n') {
      out.code[i] = '\n';
      out.comments[i] = '\n';
    }
  }

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::size_t literal_start = 0;  // opening quote of the literal in flight
  std::string literal_text;
  std::string raw_close;  // ")delim\"" that terminates the raw string

  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char peek = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && peek == '/') {
          state = State::kLine;
          ++i;
        } else if (c == '/' && peek == '*') {
          state = State::kBlock;
          ++i;
        } else if (c == '"' && raw_string_start(in, i)) {
          state = State::kRaw;
          literal_start = i;
          literal_text.clear();
          std::string delim;
          std::size_t j = i + 1;
          while (j < in.size() && in[j] != '(' && delim.size() < 18) {
            delim += in[j++];
          }
          raw_close = ")" + delim + "\"";
          i = j;  // sits on '(' (or ran off a malformed prefix; loop copes)
        } else if (c == '"') {
          state = State::kString;
          literal_start = i;
          literal_text.clear();
          out.code[i] = '"';
        } else if (c == '\'' && !digit_separator(in, i)) {
          state = State::kChar;
          out.code[i] = '\'';
        } else if (c != '\n') {
          out.code[i] = c;
        }
        break;
      case State::kLine:
        // A backslash-newline splices physical lines before comments are
        // recognized, so the comment swallows the next line too.
        if (c == '\\') {
          std::size_t j = i + 1;
          if (j < in.size() && in[j] == '\r') ++j;
          if (j < in.size() && in[j] == '\n') {
            i = j;  // newline chars already live in the prefill
            break;
          }
          out.comments[i] = c;
        } else if (c == '\n') {
          state = State::kCode;
        } else {
          out.comments[i] = c;
        }
        break;
      case State::kBlock:
        if (c == '*' && peek == '/') {
          state = State::kCode;
          ++i;
        } else if (c != '\n') {
          out.comments[i] = c;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && peek != '\0') {
          if (state == State::kString) {
            literal_text += c;
            literal_text += peek;
          }
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          if (state == State::kString) {
            out.strings.push_back({literal_start, literal_text});
          }
          out.code[i] = c;
          state = State::kCode;
        } else if (state == State::kString) {
          literal_text += c;
        }
        break;
      case State::kRaw:
        if (in.compare(i, raw_close.size(), raw_close) == 0) {
          out.strings.push_back({literal_start, literal_text});
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          literal_text += c;
        }
        break;
    }
  }
  return out;
}

bool token_at(const std::string& text, std::size_t p,
              const std::string& token) {
  if (p > 0 && ident_char(text[p - 1])) return false;
  const std::size_t end = p + token.size();
  if (!token.empty() && ident_char(token.back()) && end < text.size() &&
      ident_char(text[end])) {
    return false;
  }
  return true;
}

std::vector<std::size_t> find_token(const std::string& text,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  for (std::size_t p = text.find(token); p != std::string::npos;
       p = text.find(token, p + 1)) {
    if (token_at(text, p, token)) hits.push_back(p);
  }
  return hits;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  pos = std::min(pos, text.size());
  return std::size_t(std::count(text.begin(),
                                text.begin() + std::ptrdiff_t(pos), '\n')) +
         1;
}

std::string line_text(const std::string& text, std::size_t pos) {
  pos = std::min(pos, text.size());
  std::size_t begin = text.rfind('\n', pos == 0 ? 0 : pos - 1);
  begin = begin == std::string::npos ? 0 : begin + 1;
  std::size_t end = text.find('\n', pos);
  if (end == std::string::npos) end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::set<std::string> allowed_rules(const std::string& comments) {
  std::set<std::string> rules;
  const std::string directive = "spatl-lint: allow(";
  for (std::size_t p = comments.find(directive); p != std::string::npos;
       p = comments.find(directive, p + 1)) {
    std::size_t q = p + directive.size();
    std::string names;
    while (q < comments.size() &&
           (ident_char(comments[q]) || comments[q] == '-' ||
            comments[q] == ',')) {
      names += comments[q++];
    }
    if (q < comments.size() && comments[q] == ')') {
      std::stringstream ss(names);
      std::string one;
      while (std::getline(ss, one, ',')) {
        if (!one.empty()) rules.insert(one);
      }
    }
  }
  return rules;
}

}  // namespace spatl::analysis
