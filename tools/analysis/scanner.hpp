// Shared token scanner for the spatl_lint analysis passes.
//
// One lexing pass over a C++ source file yields three parallel "channels",
// each the same length as the input with newlines preserved, so a byte
// position in any channel maps to the same 1-based line number:
//
//   code      comment text and string/char-literal contents blanked — the
//             channel rule passes match tokens against, so prose and keys
//             never trip a code rule.
//   comments  only comment text visible, everything else blanked — the
//             channel annotation conventions (// ckpt:, spatl-lint: allow)
//             are parsed from, so a string literal can never masquerade as
//             an annotation.
//   strings   the extracted string-literal contents with their byte
//             positions — used by passes that need literal values (include
//             paths, checkpoint entry keys).
//
// The lexer understands the edge cases the old single-channel stripper
// mishandled: raw string literals (R"delim(...)delim", including u8R/LR/uR/UR
// prefixes), backslash-newline line continuations inside // comments (phase-2
// splicing keeps the comment alive onto the next physical line), and digit
// separators (1'000'000 — a ' after a numeric token is not a char literal).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace spatl::analysis {

/// One string literal: `pos` is the byte offset of the opening quote in the
/// original text (valid in every channel), `text` the unescaped-as-written
/// content between the quotes.
struct StringLiteral {
  std::size_t pos = 0;
  std::string text;
};

struct SourceText {
  std::string raw;
  std::string code;
  std::string comments;
  std::vector<StringLiteral> strings;
};

/// Lex `raw` into the three channels described above.
SourceText scan_source(std::string raw);

bool ident_char(char c);

/// Token occurrence test: `token` at position `p` in `text` with no
/// identifier character butting against either end (tokens may end in
/// punctuation such as '(' — only identifier-like ends are boundary-checked).
bool token_at(const std::string& text, std::size_t p, const std::string& token);

/// All token occurrences of `token` in `text`.
std::vector<std::size_t> find_token(const std::string& text,
                                    const std::string& token);

/// 1-based line number of byte position `pos`.
std::size_t line_of(const std::string& text, std::size_t pos);

/// The trimmed content of the line containing `pos` — used as the
/// drift-stable context key in baseline files.
std::string line_text(const std::string& text, std::size_t pos);

/// Rules a file opted out of via `spatl-lint: allow(rule[,rule...])`
/// directives. Parsed from the comments channel so only a real comment can
/// grant an exception.
std::set<std::string> allowed_rules(const std::string& comments);

}  // namespace spatl::analysis
