#include "report/json.hpp"

#include <cctype>
#include <cstdint>
#include <cstdlib>

namespace spatl::report {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::uint64_t JsonValue::u64(const std::string& key,
                             std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != Kind::kNumber || v->number < 0.0) {
    return fallback;
  }
  return std::uint64_t(v->number);
}

std::string JsonValue::str(const std::string& key,
                           const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string : fallback;
}

bool JsonValue::flag(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : fallback;
}

namespace {

// Hand-rolled cursor parser. Depth is bounded to keep a pathological
// (or hostile) input from overflowing the stack via recursion.
class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : text_(text), err_(err) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (err_ != nullptr) {
      *err_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false", 5);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(unsigned(text_[pos_]))) {
      pos_ = start;
      return fail("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit(unsigned(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(unsigned(text_[pos_]))) {
        return fail("invalid fraction");
      }
      while (pos_ < text_.size() && std::isdigit(unsigned(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(unsigned(text_[pos_]))) {
        return fail("invalid exponent");
      }
      while (pos_ < text_.size() && std::isdigit(unsigned(text_[pos_]))) {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("unterminated escape");
        switch (text_[pos_]) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (!parse_unicode_escape(out)) return false;
            continue;  // parse_unicode_escape advanced past the digits
          }
          default:
            return fail("invalid escape");
        }
        ++pos_;
        continue;
      }
      if (unsigned(c) < 0x20) return fail("raw control character in string");
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return fail("truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= std::uint32_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= std::uint32_t(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= std::uint32_t(c - 'A' + 10);
      } else {
        return fail("invalid hex digit in \\u escape");
      }
    }
    *out = v;
    return true;
  }

  // Decodes \uXXXX (and surrogate pairs) to UTF-8. json_escape only emits
  // \u00XX for control characters, but a fully-decoding reader keeps the
  // round-trip property for any valid writer.
  bool parse_unicode_escape(std::string* out) {
    ++pos_;  // past 'u'
    std::uint32_t cp = 0;
    if (!hex4(&cp)) return false;
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (text_.compare(pos_, 2, "\\u") != 0) {
        return fail("unpaired high surrogate");
      }
      pos_ += 2;
      std::uint32_t low = 0;
      if (!hex4(&low)) return false;
      if (low < 0xDC00 || low > 0xDFFF) {
        return fail("invalid low surrogate");
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return fail("unpaired low surrogate");
    }
    if (cp < 0x80) {
      out->push_back(char(cp));
    } else if (cp < 0x800) {
      out->push_back(char(0xC0 | (cp >> 6)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(char(0xE0 | (cp >> 12)));
      out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(char(0xF0 | (cp >> 18)));
      out->push_back(char(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(char(0x80 | (cp & 0x3F)));
    }
    return true;
  }

  bool parse_array(JsonValue* out, std::size_t depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(&item, depth + 1)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue* out, std::size_t depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue* out, std::string* err) {
  Parser p(text, err);
  return p.parse_document(out);
}

bool parse_jsonl(const std::string& text, std::vector<JsonValue>* out,
                 std::string* err) {
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    std::string line = text.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = end + 1;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    JsonValue value;
    std::string line_err;
    if (!parse_json(line, &value, &line_err)) {
      if (err != nullptr) {
        *err = "line " + std::to_string(line_no) + ": " + line_err;
      }
      return false;
    }
    out->push_back(std::move(value));
  }
  return true;
}

}  // namespace spatl::report
