// Minimal recursive-descent JSON reader for the offline report tool.
//
// The telemetry pipeline only ever *writes* JSON (obs::JsonObject renders
// records with %.17g doubles and insertion-ordered keys); spatl_report is
// the first consumer that has to read those bytes back. The reader mirrors
// the writer's constraints: objects preserve key order, numbers are plain
// doubles, and anything the writer cannot produce (comments, trailing
// commas, unpaired surrogates) is a hard parse error rather than a
// best-effort guess — a malformed line in a telemetry stream is a bug we
// want surfaced, not smoothed over.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace spatl::report {

/// One parsed JSON value. A tagged union over the six JSON kinds; object
/// members keep file order so reports derived from them are byte-stable.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                               // kArray
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup by key; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Typed member getters with fallbacks — the record schemas are
  /// feature-gated, so most fields are optional by design.
  double num(const std::string& key, double fallback = 0.0) const;
  std::uint64_t u64(const std::string& key, std::uint64_t fallback = 0) const;
  std::string str(const std::string& key,
                  const std::string& fallback = "") const;
  bool flag(const std::string& key, bool fallback = false) const;
};

/// Parse one complete JSON document. Returns false (with a
/// position-bearing message in `err`) on malformed input or trailing
/// garbage after the document.
bool parse_json(const std::string& text, JsonValue* out, std::string* err);

/// Parse a JSONL stream: one document per non-empty line. Stops at the
/// first malformed line and reports its 1-based line number in `err`.
bool parse_jsonl(const std::string& text, std::vector<JsonValue>* out,
                 std::string* err);

}  // namespace spatl::report
