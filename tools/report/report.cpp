// The self_test here prints its diagnosis directly (it runs under
// `spatl_report --self-test`, a CLI surface), hence:
// spatl-lint: allow(raw-stderr)
#include "report/report.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/export.hpp"
#include "obs/quantile.hpp"

namespace spatl::report {

namespace {

void fold_round(const JsonValue& rec, HealthReport* r,
                std::map<std::string, obs::LogBucketSketch>* sketches) {
  if (r->round_records == 0) {
    r->algo = rec.str("algo");
    r->first_round = rec.u64("round");
  }
  ++r->round_records;
  r->last_round = rec.u64("round");

  r->selected += rec.u64("selected");
  r->dropped += rec.u64("dropped");
  r->stragglers += rec.u64("stragglers");
  r->accepted += rec.u64("accepted");
  r->rejected += rec.u64("rejected");
  r->retransmissions += rec.u64("retransmissions");
  if (rec.flag("skipped")) ++r->rounds_skipped;
  if (rec.flag("rolled_back")) ++r->rollbacks;
  if (rec.flag("escalated")) ++r->escalations;

  if (const JsonValue* comm = rec.find("comm")) {
    r->uplink_bytes += comm->num("uplink_bytes");
    r->downlink_bytes += comm->num("downlink_bytes");
    r->retransmitted_bytes += comm->num("retransmitted_bytes");
    r->cumulative_bytes = comm->num("cumulative_bytes");
  }
  if (const JsonValue* eval = rec.find("eval")) {
    const double acc = eval->num("avg_accuracy");
    r->final_accuracy = acc;
    if (!r->has_eval || acc > r->best_accuracy) r->best_accuracy = acc;
    r->final_loss = eval->num("avg_loss");
    r->has_eval = true;
  }
  if (const JsonValue* phases = rec.find("phases")) {
    for (const auto& [name, timing] : phases->members) {
      const double ms = timing.num("total_ns") / 1.0e6;
      PhaseStat& stat = r->phases[name];
      ++stat.rounds;
      stat.total_ms += ms;
      if (ms > stat.max_ms) stat.max_ms = ms;
      // Same sketch, same accuracy as the runner's online percentiles, so
      // offline and exported quantiles agree to the last bit.
      sketches->try_emplace(name).first->second.record(ms);
    }
  }
}

void fold_recovery(const JsonValue& rec, HealthReport* r) {
  if (rec.flag("ok")) {
    // Successful commits are routine; only count load-phase recoveries.
    if (rec.str("phase") == "load") ++r->recoveries_ok;
  } else {
    ++r->recoveries_failed;
  }
}

double phase_p95(const JsonValue& baseline, const std::string& name) {
  if (const JsonValue* phases = baseline.find("phases")) {
    if (const JsonValue* phase = phases->find(name)) {
      return phase->num("p95_ms");
    }
  }
  return 0.0;
}

}  // namespace

HealthReport build_report(const std::vector<JsonValue>& records,
                          const JsonValue* trace) {
  HealthReport r;
  std::map<std::string, obs::LogBucketSketch> sketches;
  for (const JsonValue& rec : records) {
    const std::string type = rec.str("type");
    if (type == "round") {
      fold_round(rec, &r, &sketches);
    } else if (type == "alert") {
      ++r.alerts;
      ++r.alerts_by_rule[rec.str("rule", "?")];
    } else if (type == "crash") {
      ++r.crashes;
    } else if (type == "recovery") {
      fold_recovery(rec, &r);
    } else if (type == "flight") {
      ++r.flight_dumps;
      ++r.flight_by_trigger[rec.str("trigger", "?")];
    } else if (type == "metrics") {
      // The end-of-run registry snapshot duplicates what the per-round
      // records already carry; acknowledged but not folded.
    } else {
      ++r.unknown_records;
    }
  }
  for (auto& [name, sketch] : sketches) {
    PhaseStat& stat = r.phases[name];
    stat.p50_ms = sketch.quantile(0.50);
    stat.p90_ms = sketch.quantile(0.90);
    stat.p95_ms = sketch.quantile(0.95);
    stat.p99_ms = sketch.quantile(0.99);
  }
  if (trace != nullptr) {
    if (const JsonValue* events = trace->find("traceEvents")) {
      for (const JsonValue& ev : events->items) {
        if (ev.str("ph") != "X") continue;
        ++r.trace_events;
        r.trace_total_ms += ev.num("dur") / 1.0e3;  // dur is microseconds
      }
    }
  }
  return r;
}

std::string render_json(const HealthReport& r) {
  obs::JsonObject rounds;
  rounds.add("records", r.round_records)
      .add("first", r.first_round)
      .add("last", r.last_round)
      .add("skipped", r.rounds_skipped);

  obs::JsonObject participation;
  participation.add("selected", r.selected)
      .add("dropped", r.dropped)
      .add("stragglers", r.stragglers)
      .add("accepted", r.accepted)
      .add("rejected", r.rejected)
      .add("retransmissions", r.retransmissions);

  obs::JsonObject resilience;
  resilience.add("rollbacks", r.rollbacks)
      .add("escalations", r.escalations)
      .add("crashes", r.crashes)
      .add("recoveries_ok", r.recoveries_ok)
      .add("recoveries_failed", r.recoveries_failed);

  obs::JsonObject alerts_by_rule;
  for (const auto& [rule, n] : r.alerts_by_rule) alerts_by_rule.add(rule, n);
  obs::JsonObject alerts;
  alerts.add("total", r.alerts).add_raw("by_rule", alerts_by_rule.str());

  obs::JsonObject flight_by_trigger;
  for (const auto& [trigger, n] : r.flight_by_trigger) {
    flight_by_trigger.add(trigger, n);
  }
  obs::JsonObject flight;
  flight.add("dumps", r.flight_dumps)
      .add_raw("by_trigger", flight_by_trigger.str());

  obs::JsonObject comm;
  comm.add("uplink_bytes", r.uplink_bytes)
      .add("downlink_bytes", r.downlink_bytes)
      .add("retransmitted_bytes", r.retransmitted_bytes)
      .add("cumulative_bytes", r.cumulative_bytes);

  obs::JsonObject phases;
  for (const auto& [name, stat] : r.phases) {
    obs::JsonObject phase;
    phase.add("rounds", stat.rounds)
        .add("total_ms", stat.total_ms)
        .add("max_ms", stat.max_ms)
        .add("p50_ms", stat.p50_ms)
        .add("p90_ms", stat.p90_ms)
        .add("p95_ms", stat.p95_ms)
        .add("p99_ms", stat.p99_ms);
    phases.add_raw(name, phase.str());
  }

  obs::JsonObject trace;
  trace.add("events", r.trace_events).add("total_ms", r.trace_total_ms);

  obs::JsonObject out;
  out.add("schema", "spatl-report-v1").add("algo", r.algo);
  out.add_raw("rounds", rounds.str());
  if (r.has_eval) {
    out.add_raw("eval", obs::JsonObject()
                            .add("final_accuracy", r.final_accuracy)
                            .add("best_accuracy", r.best_accuracy)
                            .add("final_loss", r.final_loss)
                            .str());
  }
  out.add_raw("participation", participation.str())
      .add_raw("resilience", resilience.str())
      .add_raw("alerts", alerts.str())
      .add_raw("flight", flight.str())
      .add_raw("comm", comm.str())
      .add_raw("phases", phases.str())
      .add_raw("trace", trace.str())
      .add("unknown_records", r.unknown_records);
  return out.str() + "\n";
}

namespace {

std::string fixed2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string fixed4(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

}  // namespace

std::string render_markdown(const HealthReport& r) {
  std::string md;
  md += "# SPATL run health report\n\n";
  md += "Algorithm: `" + (r.algo.empty() ? std::string("?") : r.algo) +
        "` — rounds " + std::to_string(r.first_round) + ".." +
        std::to_string(r.last_round) + " (" +
        std::to_string(r.round_records) + " records, " +
        std::to_string(r.rounds_skipped) + " skipped)\n\n";

  if (r.has_eval) {
    md += "## Learning\n\n";
    md += "| final accuracy | best accuracy | final loss |\n";
    md += "|---|---|---|\n";
    md += "| " + fixed4(r.final_accuracy) + " | " + fixed4(r.best_accuracy) +
          " | " + fixed4(r.final_loss) + " |\n\n";
  }

  md += "## Participation\n\n";
  md += "| selected | dropped | stragglers | accepted | rejected | "
        "retransmissions |\n";
  md += "|---|---|---|---|---|---|\n";
  md += "| " + std::to_string(r.selected) + " | " + std::to_string(r.dropped) +
        " | " + std::to_string(r.stragglers) + " | " +
        std::to_string(r.accepted) + " | " + std::to_string(r.rejected) +
        " | " + std::to_string(r.retransmissions) + " |\n\n";

  md += "## Resilience\n\n";
  md += "| rollbacks | escalations | crashes | recoveries ok | recoveries "
        "failed | flight dumps |\n";
  md += "|---|---|---|---|---|---|\n";
  md += "| " + std::to_string(r.rollbacks) + " | " +
        std::to_string(r.escalations) + " | " + std::to_string(r.crashes) +
        " | " + std::to_string(r.recoveries_ok) + " | " +
        std::to_string(r.recoveries_failed) + " | " +
        std::to_string(r.flight_dumps) + " |\n\n";

  if (r.alerts > 0) {
    md += "## Alerts (" + std::to_string(r.alerts) + ")\n\n";
    md += "| rule | fired |\n|---|---|\n";
    for (const auto& [rule, n] : r.alerts_by_rule) {
      md += "| " + rule + " | " + std::to_string(n) + " |\n";
    }
    md += "\n";
  }

  md += "## Communication\n\n";
  md += "| cumulative bytes | sampled uplink | sampled downlink | "
        "retransmitted |\n";
  md += "|---|---|---|---|\n";
  md += "| " + fixed2(r.cumulative_bytes) + " | " + fixed2(r.uplink_bytes) +
        " | " + fixed2(r.downlink_bytes) + " | " +
        fixed2(r.retransmitted_bytes) + " |\n\n";

  if (!r.phases.empty()) {
    md += "## Phase latency (ms)\n\n";
    md += "| phase | rounds | total | p50 | p90 | p95 | p99 | max |\n";
    md += "|---|---|---|---|---|---|---|---|\n";
    for (const auto& [name, s] : r.phases) {
      md += "| " + name + " | " + std::to_string(s.rounds) + " | " +
            fixed2(s.total_ms) + " | " + fixed2(s.p50_ms) + " | " +
            fixed2(s.p90_ms) + " | " + fixed2(s.p95_ms) + " | " +
            fixed2(s.p99_ms) + " | " + fixed2(s.max_ms) + " |\n";
    }
    md += "\n";
  }

  if (r.trace_events > 0) {
    md += "## Trace\n\n";
    md += std::to_string(r.trace_events) + " complete events, " +
          fixed2(r.trace_total_ms) + " ms total span time\n\n";
  }

  if (r.unknown_records > 0) {
    md += "**Warning:** " + std::to_string(r.unknown_records) +
          " record(s) with unknown type — possible schema drift.\n";
  }
  return md;
}

std::vector<DiffViolation> diff_reports(const JsonValue& baseline,
                                        const HealthReport& current,
                                        const DiffTolerances& tol) {
  std::vector<DiffViolation> out;
  const auto violate = [&out](const std::string& what, double base,
                              double cur) {
    out.push_back({what, base, cur});
  };

  if (const JsonValue* eval = baseline.find("eval")) {
    const double base_acc = eval->num("final_accuracy");
    if (current.has_eval &&
        current.final_accuracy < base_acc - tol.accuracy_drop) {
      violate("final_accuracy dropped beyond tolerance", base_acc,
              current.final_accuracy);
    }
  }
  if (const JsonValue* comm = baseline.find("comm")) {
    const double base_bytes = comm->num("cumulative_bytes");
    if (base_bytes > 0.0 &&
        current.cumulative_bytes > base_bytes * (1.0 + tol.bytes_ratio)) {
      violate("cumulative_bytes grew beyond tolerance", base_bytes,
              current.cumulative_bytes);
    }
  }
  for (const auto& [name, stat] : current.phases) {
    const double base_p95 = phase_p95(baseline, name);
    if (base_p95 > 0.0 && stat.p95_ms > base_p95 * (1.0 + tol.p95_ratio)) {
      violate("phase " + name + " p95_ms regressed beyond tolerance",
              base_p95, stat.p95_ms);
    }
  }
  if (const JsonValue* res = baseline.find("resilience")) {
    const double base_failed = res->num("recoveries_failed");
    if (double(current.recoveries_failed) > base_failed) {
      violate("recoveries_failed exceeded baseline", base_failed,
              double(current.recoveries_failed));
    }
  }
  const double base_unknown = baseline.num("unknown_records");
  if (double(current.unknown_records) > base_unknown) {
    violate("unknown_records exceeded baseline", base_unknown,
            double(current.unknown_records));
  }
  return out;
}

namespace {

// Known-input stream for the self-test: two traced rounds with eval, an
// alert, a crash + failed recovery load, and a flight dump.
const char kSelfTestJsonl[] =
    R"({"type":"round","algo":"spatl","round":1,"selected":4,"dropped":1,"stragglers":0,"accepted":3,"rejected":1,"retransmissions":2,"skipped":false,"rolled_back":false,"escalated":false,"comm":{"uplink_bytes":1000,"downlink_bytes":2000,"retransmitted_bytes":100,"cumulative_bytes":3000},"eval":{"avg_accuracy":0.5,"avg_loss":1.2},"phases":{"fl/aggregate":{"total_ns":2000000,"count":1},"fl/local_train":{"total_ns":8000000,"count":4}}}
{"type":"alert","rule":"acc-floor","metric":"eval.avg_accuracy","value":0.5,"threshold":0.6,"direction":"below","round":1}
{"type":"round","algo":"spatl","round":2,"selected":4,"dropped":0,"stragglers":1,"accepted":4,"rejected":0,"retransmissions":0,"skipped":false,"rolled_back":true,"escalated":false,"comm":{"uplink_bytes":1200,"downlink_bytes":2000,"retransmitted_bytes":0,"cumulative_bytes":6200},"eval":{"avg_accuracy":0.7,"avg_loss":0.9},"phases":{"fl/aggregate":{"total_ns":4000000,"count":1},"fl/local_train":{"total_ns":6000000,"count":4}}}
{"type":"recovery","phase":"load","round":2,"path":"g0.ckpt","attempt":1,"ok":false,"error":"crc mismatch"}
{"type":"crash","algo":"spatl","round":2,"recovered_to":1,"source":"baseline"}
{"type":"flight","trigger":"crash_drill","round":2,"window":2,"rounds_seen":2,"rounds_dropped":0,"first_round":1,"last_round":2,"records":[]}
)";

bool expect(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "spatl_report self-test FAILED: %s\n", what);
  return ok;
}

}  // namespace

int self_test() {
  std::vector<JsonValue> records;
  std::string err;
  if (!expect(parse_jsonl(kSelfTestJsonl, &records, &err),
              "embedded stream must parse")) {
    std::fprintf(stderr, "  parse error: %s\n", err.c_str());
    return 1;
  }
  const HealthReport r = build_report(records, nullptr);
  bool ok = true;
  ok &= expect(r.algo == "spatl", "algo folds from the first round record");
  ok &= expect(r.round_records == 2 && r.first_round == 1 &&
                   r.last_round == 2,
               "round coverage");
  ok &= expect(r.selected == 8 && r.dropped == 1 && r.stragglers == 1,
               "participation sums");
  ok &= expect(r.accepted == 7 && r.rejected == 1 && r.retransmissions == 2,
               "acceptance sums");
  ok &= expect(r.rollbacks == 1 && r.crashes == 1, "resilience counts");
  ok &= expect(r.recoveries_ok == 0 && r.recoveries_failed == 1,
               "recovery ladder counts");
  ok &= expect(r.alerts == 1 && r.alerts_by_rule.count("acc-floor") == 1,
               "alert attribution");
  ok &= expect(r.flight_dumps == 1 &&
                   r.flight_by_trigger.count("crash_drill") == 1,
               "flight attribution");
  ok &= expect(r.has_eval && r.final_accuracy == 0.7 &&
                   r.best_accuracy == 0.7 && r.final_loss == 0.9,
               "eval folds to the last record");
  ok &= expect(r.cumulative_bytes == 6200.0 && r.uplink_bytes == 2200.0,
               "comm totals");
  ok &= expect(r.phases.size() == 2, "two traced phases");
  const PhaseStat& agg = r.phases.at("fl/aggregate");
  ok &= expect(agg.rounds == 2 && agg.max_ms == 4.0, "aggregate phase fold");
  // Sketch guarantee: estimates within 1% relative error of the true
  // sample. With two samples, every quantile's 0-based nearest rank is 0,
  // so p50 through p99 all land on the smaller sample (2 ms).
  ok &= expect(std::fabs(agg.p50_ms - 2.0) <= 0.02 + 1e-12 &&
                   std::fabs(agg.p99_ms - 2.0) <= 0.02 + 1e-12,
               "quantiles within sketch error bound");
  ok &= expect(r.unknown_records == 0, "all record types recognised");

  const std::string json_a = render_json(r);
  const std::string json_b = render_json(build_report(records, nullptr));
  ok &= expect(json_a == json_b, "render_json is byte-deterministic");
  ok &= expect(json_a.find("\"spatl-report-v1\"") != std::string::npos,
               "schema tag present");
  const std::string md = render_markdown(r);
  ok &= expect(md.find("## Phase latency") != std::string::npos,
               "markdown has a phase table");

  // A report must diff clean against itself...
  JsonValue self;
  ok &= expect(parse_json(json_a, &self, &err), "own JSON must re-parse");
  ok &= expect(diff_reports(self, r, DiffTolerances{}).empty(),
               "self-diff has no violations");
  // ...and trip the gate once the baseline is strictly better.
  HealthReport worse = r;
  worse.final_accuracy = r.final_accuracy - 0.5;
  worse.cumulative_bytes = r.cumulative_bytes * 10.0;
  worse.recoveries_failed = r.recoveries_failed + 1;
  ok &= expect(diff_reports(self, worse, DiffTolerances{}).size() == 3,
               "regressed report trips accuracy, bytes and recovery gates");
  return ok ? 0 : 1;
}

}  // namespace spatl::report
