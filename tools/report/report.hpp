// Offline health reports over SPATL telemetry.
//
// spatl_report ingests the JSONL stream a run produced (round / alert /
// crash / recovery / metrics / flight records, see DESIGN.md §10) plus an
// optional Chrome trace, folds them into one HealthReport, and renders it
// as operator-facing markdown and machine-readable JSON
// ("spatl-report-v1"). The JSON form doubles as a regression baseline:
// diff_reports compares a current report against a stored one and counts
// tolerance violations, which the CLI turns into a non-zero exit code.
//
// Everything here is deterministic: same input bytes → same output bytes.
// Aggregates live in ordered maps, floats render through obs::JsonObject's
// %.17g path, and phase percentiles are recomputed from the per-round
// phase timings with the same obs::LogBucketSketch the runner uses online.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace spatl::report {

/// Latency summary for one traced phase, rebuilt from the per-round
/// "phases" blocks of the round records.
struct PhaseStat {
  std::uint64_t rounds = 0;   // rounds contributing a sample
  double total_ms = 0.0;      // summed wall time across those rounds
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// One run's health, folded from a telemetry stream.
struct HealthReport {
  std::string algo;

  // Round coverage.
  std::uint64_t round_records = 0;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;

  // Learning outcome (absent when the run never evaluated).
  bool has_eval = false;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  double final_loss = 0.0;

  // Participation totals across the observed rounds.
  std::uint64_t selected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t retransmissions = 0;

  // Resilience events.
  std::uint64_t rounds_skipped = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t escalations = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries_ok = 0;
  std::uint64_t recoveries_failed = 0;

  // Alert / flight activity.
  std::uint64_t alerts = 0;
  std::map<std::string, std::uint64_t> alerts_by_rule;
  std::uint64_t flight_dumps = 0;
  std::map<std::string, std::uint64_t> flight_by_trigger;

  // Communication. Sampled sums cover only the rounds that emitted a
  // record (telemetry stride may skip rounds); cumulative_bytes is the
  // ledger total as of the last record and covers the whole run.
  double uplink_bytes = 0.0;
  double downlink_bytes = 0.0;
  double retransmitted_bytes = 0.0;
  double cumulative_bytes = 0.0;

  // Per-phase latency, keyed by the tracer's phase name ("fl/aggregate").
  std::map<std::string, PhaseStat> phases;

  // Chrome trace ingest (zero when no trace was supplied).
  std::uint64_t trace_events = 0;
  double trace_total_ms = 0.0;

  // Records whose "type" is missing or unrecognised — should stay zero on
  // a healthy stream; surfaced so schema drift is visible in the report.
  std::uint64_t unknown_records = 0;
};

/// Tolerances for diff_reports. Ratios are fractional headroom over the
/// baseline; the accuracy tolerance is an absolute drop in [0,1] units.
struct DiffTolerances {
  double accuracy_drop = 0.01;
  double bytes_ratio = 0.05;
  double p95_ratio = 0.50;
};

/// One tolerance violation found by diff_reports.
struct DiffViolation {
  std::string what;      // human-readable description
  double baseline = 0.0;
  double current = 0.0;
};

/// Fold parsed telemetry records into a HealthReport. `trace` may be null;
/// when given it must be a Chrome trace object ({"traceEvents": [...]}).
HealthReport build_report(const std::vector<JsonValue>& records,
                          const JsonValue* trace);

/// Machine-readable rendering, schema "spatl-report-v1". Deterministic:
/// byte-identical for identical reports. Ends with a newline.
std::string render_json(const HealthReport& r);

/// Operator-facing markdown rendering. Deterministic as well.
std::string render_markdown(const HealthReport& r);

/// Compare `current` against a previously rendered "spatl-report-v1"
/// baseline. Checks: final accuracy may not drop more than
/// `accuracy_drop`; cumulative bytes may not exceed baseline by more than
/// `bytes_ratio`; each baseline phase's p95 may not exceed baseline by
/// more than `p95_ratio`; recoveries_failed and unknown_records may not
/// exceed the baseline at all.
std::vector<DiffViolation> diff_reports(const JsonValue& baseline,
                                        const HealthReport& current,
                                        const DiffTolerances& tol);

/// Built-in known-answer check (run by `spatl_report --self-test` and
/// ctest): builds a report from an embedded stream, verifies the folded
/// numbers, re-renders twice for byte-identity, and exercises both the
/// clean and the violating diff path. Returns 0 on success; prints the
/// first failure to stderr and returns 1 otherwise.
int self_test();

}  // namespace spatl::report
