// This tool IS a CLI diagnostics surface, hence:
// spatl-lint: allow(raw-stderr)
//
// spatl_report — offline health reports over SPATL telemetry.
//
//   spatl_report --jsonl run.jsonl [--trace run.trace.json]
//                [--out-json run.report.json] [--out-md run.report.md]
//                [--diff baseline.report.json]
//                [--tol-accuracy 0.01] [--tol-bytes 0.05] [--tol-p95 0.5]
//   spatl_report --self-test
//
// With no --out-* flag the markdown report goes to stdout. --diff compares
// the freshly built report against a stored "spatl-report-v1" baseline and
// exits 1 when any tolerance is violated, which makes the tool usable as a
// CI health gate:
//
//   spatl_report --jsonl run.jsonl --diff golden.report.json || exit 1
//
// Exit codes: 0 healthy, 1 diff violations or self-test failure, 2 usage
// or I/O errors. Output is deterministic — identical inputs produce
// byte-identical reports.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "report/report.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return bool(out);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: spatl_report --jsonl <run.jsonl> [--trace <trace.json>]\n"
      "                    [--out-json <path>] [--out-md <path>]\n"
      "                    [--diff <baseline.report.json>]\n"
      "                    [--tol-accuracy F] [--tol-bytes F] [--tol-p95 F]\n"
      "       spatl_report --self-test\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using spatl::report::DiffTolerances;
  using spatl::report::DiffViolation;
  using spatl::report::HealthReport;
  using spatl::report::JsonValue;

  spatl::common::Flags flags(argc, argv, 1);
  try {
    flags.check_known({"jsonl", "trace", "out-json", "out-md", "diff",
                       "tol-accuracy", "tol-bytes", "tol-p95", "self-test"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spatl_report: %s\n", e.what());
    return usage();
  }

  if (flags.get_bool("self-test", false)) {
    const int rc = spatl::report::self_test();
    if (rc == 0) std::printf("spatl_report self-test OK\n");
    return rc;
  }

  const std::string jsonl_path = flags.get("jsonl");
  if (jsonl_path.empty()) return usage();

  std::string raw;
  if (!read_file(jsonl_path, &raw)) {
    std::fprintf(stderr, "spatl_report: cannot read %s\n",
                 jsonl_path.c_str());
    return 2;
  }
  std::vector<JsonValue> records;
  std::string err;
  if (!spatl::report::parse_jsonl(raw, &records, &err)) {
    std::fprintf(stderr, "spatl_report: %s: %s\n", jsonl_path.c_str(),
                 err.c_str());
    return 2;
  }

  JsonValue trace;
  const JsonValue* trace_ptr = nullptr;
  const std::string trace_path = flags.get("trace");
  if (!trace_path.empty()) {
    std::string trace_raw;
    if (!read_file(trace_path, &trace_raw)) {
      std::fprintf(stderr, "spatl_report: cannot read %s\n",
                   trace_path.c_str());
      return 2;
    }
    if (!spatl::report::parse_json(trace_raw, &trace, &err)) {
      std::fprintf(stderr, "spatl_report: %s: %s\n", trace_path.c_str(),
                   err.c_str());
      return 2;
    }
    trace_ptr = &trace;
  }

  const HealthReport report = spatl::report::build_report(records, trace_ptr);
  const std::string json = spatl::report::render_json(report);
  const std::string markdown = spatl::report::render_markdown(report);

  const std::string out_json = flags.get("out-json");
  if (!out_json.empty() && !write_file(out_json, json)) {
    std::fprintf(stderr, "spatl_report: cannot write %s\n", out_json.c_str());
    return 2;
  }
  const std::string out_md = flags.get("out-md");
  if (!out_md.empty() && !write_file(out_md, markdown)) {
    std::fprintf(stderr, "spatl_report: cannot write %s\n", out_md.c_str());
    return 2;
  }
  if (out_json.empty() && out_md.empty()) std::fputs(markdown.c_str(), stdout);

  const std::string diff_path = flags.get("diff");
  if (!diff_path.empty()) {
    std::string base_raw;
    if (!read_file(diff_path, &base_raw)) {
      std::fprintf(stderr, "spatl_report: cannot read %s\n",
                   diff_path.c_str());
      return 2;
    }
    JsonValue baseline;
    if (!spatl::report::parse_json(base_raw, &baseline, &err)) {
      std::fprintf(stderr, "spatl_report: %s: %s\n", diff_path.c_str(),
                   err.c_str());
      return 2;
    }
    if (baseline.str("schema") != "spatl-report-v1") {
      std::fprintf(stderr,
                   "spatl_report: %s is not a spatl-report-v1 document\n",
                   diff_path.c_str());
      return 2;
    }
    DiffTolerances tol;
    tol.accuracy_drop = flags.get_double("tol-accuracy", tol.accuracy_drop);
    tol.bytes_ratio = flags.get_double("tol-bytes", tol.bytes_ratio);
    tol.p95_ratio = flags.get_double("tol-p95", tol.p95_ratio);
    const std::vector<DiffViolation> violations =
        spatl::report::diff_reports(baseline, report, tol);
    for (const DiffViolation& v : violations) {
      std::fprintf(stderr, "DIFF VIOLATION: %s (baseline %.6g, current %.6g)\n",
                   v.what.c_str(), v.baseline, v.current);
    }
    if (!violations.empty()) {
      std::fprintf(stderr, "spatl_report: %zu violation(s) vs %s\n",
                   violations.size(), diff_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "spatl_report: healthy vs %s\n", diff_path.c_str());
  }
  return 0;
}
