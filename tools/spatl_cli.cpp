// spatl — command-line driver for the library.
//
// Subcommands:
//   train    run federated training and optionally checkpoint the result
//   evaluate load a checkpoint and evaluate it on fresh synthetic data
//   prune    run the salient-selection agent as a pruner on one model
//   info     print a model's structure, parameter and FLOPs budget
//
// Examples:
//   spatl train --algo spatl --arch resnet20 --clients 10 --rounds 20
//         --beta 0.5 --out run.ckpt
//   spatl evaluate --ckpt run.ckpt --arch resnet20
//   spatl prune --arch resnet20 --budget 0.6
//   spatl info --arch vgg11 --input 32 --width 1.0
//
// usage() and top-level error reporting write straight to stderr by design
// (a CLI's usage text must not depend on the log level):
// spatl-lint: allow(raw-stderr)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "core/spatl.hpp"
#include "core/transfer.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "fl/compression.hpp"
#include "fl/local_only.hpp"
#include "fl/runner.hpp"
#include "fl/server_opt.hpp"
#include "models/checkpoint.hpp"
#include "obs/alert.hpp"
#include "obs/flight.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prune/flops.hpp"
#include "prune/pipelines.hpp"
#include "tensor/backend.hpp"

using namespace spatl;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: spatl <train|evaluate|prune|info> [--flags]\n"
               "  train    --algo fedavg|fedprox|fednova|scaffold|fedavgm|"
               "fedadam|fedavg+topk|fedavg+int8|local-only|spatl\n"
               "           --arch ARCH --clients N --rounds R --beta B\n"
               "           [--sample-ratio F] [--epochs E] [--lr F]\n"
               "           [--input PX] [--width F] [--seed S] [--out CKPT]\n"
               "           [--backend scalar|cpu-simd|auto]\n"
               "           fault injection / resilience:\n"
               "           [--fault-dropout F] [--fault-straggler F]\n"
               "           [--fault-corruption F] [--fault-corruption-kind\n"
               "            nan|inf|bitflip] [--fault-loss F] [--fault-seed S]\n"
               "           [--fault-deadline T] [--max-retries N] [--quorum N]\n"
               "           [--max-update-norm F] [--stale-weight F]\n"
               "           [--retry-backoff T] [--retry-backoff-factor F]\n"
               "           [--retry-backoff-max T] [--retry-jitter F]\n"
               "           semi-async straggler commit / escalation:\n"
               "           [--async] [--async-stale-weight F]\n"
               "           [--async-max-lag N] [--escalate]\n"
               "           [--escalate-threshold F] [--escalate-patience N]\n"
               "           [--escalate-aggregator median|trimmed|krum|clipped]\n"
               "           [--escalate-reset-after N]\n"
               "           elastic membership / admission / failover:\n"
               "           [--churn-join F] [--churn-leave F]\n"
               "           [--churn-return F] [--churn-initial F]\n"
               "           [--churn-stale-weight F] [--churn-staleness-cap N]\n"
               "           [--churn-seed S] [--admit-max-participants N]\n"
               "           [--admit-max-uplink-bytes B]\n"
               "           [--admit-policy shed|defer] [--crash-at R1,R2,...]\n"
               "           [--alert-reject-rate F] [--alert-shed-rate F]\n"
               "           Byzantine attacks / robust aggregation:\n"
               "           [--byz-fraction F] [--byz-attack signflip|scale|\n"
               "            noise|collude] [--byz-scale F] [--byz-noise F]\n"
               "           [--aggregator mean|median|trimmed|krum|clipped]\n"
               "           [--trim-fraction F] [--krum-f N] [--multi-krum N]\n"
               "           [--clip-norm F] [--krum-auto-f]\n"
               "           recovery / sampling:\n"
               "           [--checkpoint-every K] [--checkpoint-path FILE]\n"
               "           [--ckpt-dir DIR] [--ckpt-keep K] [--ckpt-verify]\n"
               "           [--no-store-resume]\n"
               "           [--resume FILE] [--divergence-factor F]\n"
               "           [--fault-aware-sampling] [--fault-ema-decay F]\n"
               "           telemetry (observation only):\n"
               "           [--metrics-out FILE.jsonl] [--telemetry-every N]\n"
               "           [--trace-out FILE.json] [--flight-window N]\n"
               "  evaluate --ckpt FILE --arch ARCH [--input PX] [--width F]\n"
               "  prune    --arch ARCH --budget F [--rl-rounds N]\n"
               "  info     --arch ARCH [--input PX] [--width F]\n");
  return 2;
}

models::ModelConfig model_config(const common::Flags& flags) {
  models::ModelConfig cfg;
  cfg.arch = flags.get("arch", "resnet20");
  cfg.input_size = std::size_t(flags.get_int("input", 12));
  cfg.width_mult = flags.get_double("width", 0.25);
  if (cfg.arch == "cnn2") cfg.in_channels = 1;
  if (!models::is_known_arch(cfg.arch)) {
    throw std::invalid_argument("unknown --arch " + cfg.arch);
  }
  return cfg;
}

data::Dataset make_data(const models::ModelConfig& mc, std::size_t samples,
                        std::uint64_t seed) {
  data::SyntheticConfig dc;
  dc.num_samples = samples;
  dc.image_size = mc.input_size;
  dc.channels = mc.in_channels;
  dc.num_classes = mc.num_classes;
  dc.seed = seed;
  return data::make_synthetic_with_labels(dc, [&] {
    std::vector<int> labels(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      labels[i] = int(i % mc.num_classes);
    }
    common::Rng shuffle_rng(seed ^ 0xBEEF);
    shuffle_rng.shuffle(labels);
    return labels;
  }());
}

int cmd_train(const common::Flags& flags) {
  const std::string algo = flags.get("algo", "spatl");
  const std::size_t clients = std::size_t(flags.get_int("clients", 10));
  const std::size_t rounds = std::size_t(flags.get_int("rounds", 10));
  const double beta = flags.get_double("beta", 0.5);
  const std::uint64_t seed = std::uint64_t(flags.get_int("seed", 42));

  fl::FlConfig cfg;
  cfg.model = model_config(flags);
  cfg.local.epochs = std::size_t(flags.get_int("epochs", 2));
  cfg.local.batch_size = 16;
  cfg.local.lr = flags.get_double("lr", 0.05);
  cfg.seed = seed;

  const auto source =
      make_data(cfg.model, clients * 80, seed ^ 0xDA7AULL);
  common::Rng env_rng(seed);
  fl::FlEnvironment env(source, clients, beta, 0.25, env_rng);

  std::unique_ptr<fl::FederatedAlgorithm> algorithm;
  if (algo == "spatl") {
    core::SpatlOptions opts;
    opts.flops_budget = flags.get_double("budget", 0.6);
    opts.agent_finetune_rounds = 2;
    opts.agent_finetune_episodes = 2;
    algorithm = std::make_unique<core::SpatlAlgorithm>(env, cfg, opts);
  } else if (algo == "fedavgm" || algo == "fedadam") {
    fl::ServerOptConfig sopt;
    sopt.optimizer = algo == "fedavgm" ? fl::ServerOptimizer::kMomentum
                                       : fl::ServerOptimizer::kAdam;
    sopt.lr = algo == "fedadam" ? 0.1 : 0.5;
    sopt.momentum = 0.5;
    algorithm = std::make_unique<fl::ServerOptFedAvg>(env, cfg, sopt);
  } else if (algo == "local-only") {
    algorithm = std::make_unique<fl::LocalOnly>(env, cfg);
  } else if (algo == "fedavg+topk") {
    algorithm = std::make_unique<fl::CompressedFedAvg>(
        env, cfg, fl::Codec::kTopK, flags.get_double("topk", 0.1));
  } else if (algo == "fedavg+int8") {
    algorithm = std::make_unique<fl::CompressedFedAvg>(env, cfg,
                                                       fl::Codec::kInt8);
  } else {
    algorithm = fl::make_baseline(algo, env, cfg);
  }

  fl::RunOptions ro;
  ro.rounds = rounds;
  ro.sample_ratio = flags.get_double("sample-ratio", 1.0);
  ro.backend = flags.get("backend", "");

  // Fault injection is active as soon as any --fault-* rate is set;
  // resilience flags alone enable the defended path without injection.
  fl::FaultConfig fc;
  fc.dropout_rate = flags.get_double("fault-dropout", 0.0);
  fc.straggler_rate = flags.get_double("fault-straggler", 0.0);
  fc.corruption_rate = flags.get_double("fault-corruption", 0.0);
  fc.loss_rate = flags.get_double("fault-loss", 0.0);
  fc.round_deadline = flags.get_double("fault-deadline", fc.round_deadline);
  fc.seed = std::uint64_t(flags.get_int("fault-seed", 0x5EEDFA17L));
  const std::string kind = flags.get("fault-corruption-kind", "nan");
  if (kind == "inf") fc.corruption_kind = fl::CorruptionKind::kInf;
  else if (kind == "bitflip") fc.corruption_kind = fl::CorruptionKind::kBitFlip;
  else if (kind != "nan") {
    throw std::invalid_argument("unknown --fault-corruption-kind " + kind);
  }
  fc.byzantine_fraction = flags.get_double("byz-fraction", 0.0);
  fc.attack_kind = fl::parse_attack_kind(flags.get("byz-attack", "signflip"));
  fc.attack_scale = flags.get_double("byz-scale", fc.attack_scale);
  fc.attack_noise_std = flags.get_double("byz-noise", fc.attack_noise_std);
  if (fc.any_faults()) ro.faults = fc;

  const bool resilience_flags =
      flags.has("quorum") || flags.has("max-update-norm") ||
      flags.has("stale-weight") || flags.has("max-retries") ||
      flags.has("retry-backoff") || flags.has("retry-jitter") ||
      flags.has("aggregator");
  if (resilience_flags || ro.faults) {
    fl::ResilienceConfig rc;
    rc.min_quorum = std::size_t(flags.get_int("quorum", 1));
    rc.max_update_norm = flags.get_double("max-update-norm", 0.0);
    rc.stale_weight = flags.get_double("stale-weight", rc.stale_weight);
    rc.retry.max_retries = std::size_t(flags.get_int("max-retries", 2));
    rc.retry.backoff_base = flags.get_double("retry-backoff", 0.0);
    rc.retry.backoff_factor =
        flags.get_double("retry-backoff-factor", rc.retry.backoff_factor);
    rc.retry.backoff_max =
        flags.get_double("retry-backoff-max", rc.retry.backoff_max);
    rc.retry.jitter = flags.get_double("retry-jitter", 0.0);
    rc.aggregator = fl::parse_aggregator_kind(flags.get("aggregator", "mean"));
    rc.trim_fraction = flags.get_double("trim-fraction", rc.trim_fraction);
    rc.krum_f = std::size_t(flags.get_int("krum-f", 0));
    rc.multi_krum = std::size_t(flags.get_int("multi-krum", 1));
    rc.clip_norm = flags.get_double("clip-norm", 0.0);
    ro.resilience = rc;
  }

  // Semi-asynchronous straggler commit (DESIGN.md §11). Only meaningful
  // alongside a --fault-deadline; harmless (bit-identical) otherwise.
  if (flags.get_bool("async", false)) {
    fl::AsyncConfig ac;
    ac.enabled = true;
    ac.stale_weight =
        flags.get_double("async-stale-weight", ac.stale_weight);
    ac.max_lag = std::size_t(flags.get_int("async-max-lag", int(ac.max_lag)));
    ro.async = ac;
  }
  if (flags.get_bool("escalate", false)) {
    ro.escalation.enabled = true;
    ro.escalation.suspect_threshold = flags.get_double(
        "escalate-threshold", ro.escalation.suspect_threshold);
    ro.escalation.patience = std::size_t(
        flags.get_int("escalate-patience", int(ro.escalation.patience)));
    ro.escalation.aggregator = fl::parse_aggregator_kind(
        flags.get("escalate-aggregator", "median"));
    ro.escalation.reset_after_quiet = std::size_t(
        flags.get_int("escalate-reset-after",
                      int(ro.escalation.reset_after_quiet)));
  }

  // Elastic membership (DESIGN.md §12): any churn rate (or partial initial
  // enrollment) turns on the deterministic churn engine.
  fl::ChurnConfig cc;
  cc.join_rate = flags.get_double("churn-join", 0.0);
  cc.leave_rate = flags.get_double("churn-leave", 0.0);
  cc.return_rate = flags.get_double("churn-return", 0.0);
  cc.initial_fraction = flags.get_double("churn-initial", 1.0);
  cc.return_stale_weight =
      flags.get_double("churn-stale-weight", cc.return_stale_weight);
  cc.staleness_cap = std::size_t(
      flags.get_int("churn-staleness-cap", int(cc.staleness_cap)));
  if (flags.has("churn-seed")) {
    cc.seed = std::uint64_t(flags.get_int("churn-seed", 0));
  }
  if (cc.any_churn()) ro.churn = cc;

  // Per-round admission budget (participant / uplink-byte caps).
  ro.admission.max_participants =
      std::size_t(flags.get_int("admit-max-participants", 0));
  ro.admission.max_uplink_bytes =
      flags.get_double("admit-max-uplink-bytes", 0.0);
  ro.admission.policy =
      fl::parse_admission_policy(flags.get("admit-policy", "shed"));

  // Failover drills: comma-separated crash rounds.
  const std::string crash_at = flags.get("crash-at");
  if (!crash_at.empty()) {
    std::size_t pos = 0;
    while (pos < crash_at.size()) {
      std::size_t comma = crash_at.find(',', pos);
      if (comma == std::string::npos) comma = crash_at.size();
      const std::string tok = crash_at.substr(pos, comma - pos);
      if (!tok.empty()) {
        ro.crash_at_rounds.push_back(std::size_t(std::stoul(tok)));
      }
      pos = comma + 1;
    }
  }

  ro.fault_aware_sampling = flags.get_bool("fault-aware-sampling", false);
  ro.fault_ema_decay =
      flags.get_double("fault-ema-decay", ro.fault_ema_decay);
  ro.checkpoint_every = std::size_t(flags.get_int("checkpoint-every", 0));
  ro.checkpoint_path = flags.get("checkpoint-path");
  // Durable generational store (DESIGN.md §13): --ckpt-dir turns it on;
  // commits happen on the --checkpoint-every cadence.
  const std::string ckpt_dir = flags.get("ckpt-dir");
  if (!ckpt_dir.empty()) {
    fl::store::StoreConfig sc;
    sc.dir = ckpt_dir;
    sc.keep_last = std::size_t(flags.get_int("ckpt-keep", int(sc.keep_last)));
    sc.verify_on_commit = flags.get_bool("ckpt-verify", false);
    ro.ckpt_store = sc;
    // Cross-run reuse: pointing a fresh process at the same directory
    // resumes from the newest valid generation automatically. An explicit
    // --resume snapshot wins; --no-store-resume forces a cold start.
    ro.resume_from_store = flags.get("resume").empty() &&
                           !flags.get_bool("no-store-resume", false);
  }
  ro.krum_auto_f = flags.get_bool("krum-auto-f", false);
  ro.divergence_factor = flags.get_double("divergence-factor", 0.0);
  fl::RunCheckpoint resume_ckpt;
  const std::string resume_path = flags.get("resume");
  if (!resume_path.empty()) {
    resume_ckpt = fl::RunCheckpoint::load(resume_path);
    ro.resume = &resume_ckpt;
    std::printf("resuming from %s\n", resume_path.c_str());
  }

  // Telemetry (DESIGN.md §10). Observation only: attaching the sink or
  // enabling the tracer never changes a float of the run.
  std::unique_ptr<obs::JsonlWriter> telemetry;
  const std::string metrics_out = flags.get("metrics-out");
  const std::string trace_out = flags.get("trace-out");
  if (!metrics_out.empty()) {
    telemetry = std::make_unique<obs::JsonlWriter>(metrics_out);
    ro.telemetry = telemetry.get();
    ro.telemetry_every = std::size_t(
        std::max(1, int(flags.get_int("telemetry-every", 1))));
  }
  if (!trace_out.empty()) obs::Tracer::instance().set_enabled(true);

  // Threshold -> alert hook: alert records share the telemetry sink (or
  // are just counted when no --metrics-out was given).
  obs::AlertWatcher alerts(telemetry.get());
  if (flags.has("alert-reject-rate")) {
    alerts.add_rule({"reject_high", "fl.reject_rate",
                     flags.get_double("alert-reject-rate", 0.5), true});
  }
  if (flags.has("alert-shed-rate")) {
    alerts.add_rule({"shed_high", "fl.shed_rate",
                     flags.get_double("alert-shed-rate", 0.5), true});
  }
  if (alerts.rule_count() > 0) ro.alerts = &alerts;

  // Flight recorder: ring of the last N rendered round records, dumped
  // into the telemetry stream as one "flight" record when a divergence
  // rollback, crash drill, or recovery-ladder exhaustion fires — the
  // rounds leading up to the incident, captured even when
  // --telemetry-every strides past them.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (flags.has("flight-window")) {
    flight = std::make_unique<obs::FlightRecorder>(
        telemetry.get(),
        std::size_t(std::max(1, int(flags.get_int("flight-window", 16)))));
    ro.flight = flight.get();
  }

  const auto result = fl::run_federated(
      *algorithm, ro, [&](std::size_t round, const fl::RoundRecord& rec) {
        std::printf("round %3zu  acc %5.1f%%  loss %.3f  comm %s\n", round,
                    rec.avg_accuracy * 100.0, rec.avg_loss,
                    common::format_bytes(rec.cumulative_bytes).c_str());
      });
  std::printf("\n%s: final %5.1f%% (best %5.1f%%), %s communicated\n",
              algorithm->name().c_str(), result.final_accuracy * 100.0,
              result.best_accuracy * 100.0,
              common::format_bytes(result.total_bytes).c_str());
  if (ro.faults || ro.resilience) {
    std::printf(
        "participation: %zu selected, %zu accepted, %zu dropped, "
        "%zu stragglers, %zu rejected, %zu rounds skipped\n"
        "retry path: %zu retransmissions, %s retransmitted\n",
        result.total_selected, result.total_accepted, result.total_dropped,
        result.total_stragglers, result.total_rejected,
        result.rounds_skipped, result.total_retransmissions,
        common::format_bytes(result.retransmitted_bytes).c_str());
    if (result.total_parked > 0 || result.buffered_remaining > 0) {
      std::printf(
          "semi-async: %zu parked, %zu committed late, %zu still buffered "
          "at exit\n",
          result.total_parked, result.total_late_commits,
          result.buffered_remaining);
    }
    if (result.rounds_escalated > 0) {
      std::printf("escalation: %zu rounds under the escalated aggregator\n",
                  result.rounds_escalated);
    }
    if (result.total_backoff_wait > 0.0 || result.total_giveups > 0) {
      std::printf("retry discipline: %.2f total backoff wait, %zu give-ups\n",
                  result.total_backoff_wait, result.total_giveups);
    }
    if (result.total_attacked > 0 || result.total_suspected > 0 ||
        result.rounds_rolled_back > 0) {
      std::printf(
          "robustness: %zu attacked uplinks, %zu suspected by the "
          "aggregator, %zu rounds rolled back\n",
          result.total_attacked, result.total_suspected,
          result.rounds_rolled_back);
    }
  }
  if (ro.churn) {
    std::printf(
        "churn: %zu joined, %zu left, %zu returned, %zu returning "
        "uplinks discounted\n",
        result.total_joined, result.total_left, result.total_returned,
        result.total_returning_discounted);
  }
  if (ro.admission.limited()) {
    std::printf("admission: %zu shed, %zu deferred (%s policy)\n",
                result.total_shed, result.total_deferred,
                fl::admission_policy_name(ro.admission.policy));
  }
  if (result.crashes_injected > 0) {
    std::printf("failover: %zu server crashes injected and recovered\n",
                result.crashes_injected);
  }
  if (ro.ckpt_store) {
    std::printf(
        "durable store: %zu generation(s) committed to %s, %zu commit "
        "failure(s), %zu recovered from disk, %zu ladder attempt(s) "
        "rejected\n",
        result.store_commits, ro.ckpt_store->dir.c_str(),
        result.store_commit_failures, result.recoveries_from_store,
        result.recovery_attempts_failed);
  }
  if (ro.krum_auto_f) {
    std::printf("krum auto-f: final estimate %zu\n", result.krum_f_estimate);
  }
  if (ro.alerts != nullptr) {
    std::printf("alerts: %zu emitted\n", alerts.alerts_emitted());
  }
  if (flight != nullptr) {
    std::printf("flight recorder: %zu dump(s), window %zu of %zu rounds\n",
                flight->dumps(), flight->window_size(), flight->rounds_seen());
  }
  if (result.checkpoints_written > 0) {
    std::printf("checkpoints: %zu written%s%s\n", result.checkpoints_written,
                ro.checkpoint_path.empty() ? "" : " to ",
                ro.checkpoint_path.c_str());
  }
  if (telemetry != nullptr) {
    obs::JsonObject rec;
    rec.add("type", "metrics")
        .add_raw("metrics",
                 obs::metrics_object(
                     obs::MetricsRegistry::instance().snapshot())
                     .str());
    telemetry->write(rec);
    std::printf("telemetry: %zu records -> %s\n", telemetry->lines(),
                metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::write_chrome_trace(obs::Tracer::instance(), trace_out);
    std::printf("trace written to %s\n", trace_out.c_str());
    obs::Tracer::instance().set_enabled(false);
  }

  const std::string out = flags.get("out");
  if (!out.empty()) {
    models::save_checkpoint(out, algorithm->global_model());
    std::printf("checkpoint written to %s\n", out.c_str());
  }
  return 0;
}

int cmd_evaluate(const common::Flags& flags) {
  const std::string ckpt = flags.get("ckpt");
  if (ckpt.empty()) return usage();
  const auto mc = model_config(flags);
  common::Rng rng(1);
  auto model = models::build_model(mc, rng);
  models::load_checkpoint(ckpt, model);
  const auto data =
      make_data(mc, std::size_t(flags.get_int("samples", 200)),
                std::uint64_t(flags.get_int("seed", 42)) ^ 0xDA7AULL);
  const auto r = data::evaluate(model, data);
  std::printf("%s on %zu samples: accuracy %5.1f%%, loss %.3f\n",
              mc.arch.c_str(), r.samples, r.accuracy * 100.0, r.loss);
  return 0;
}

int cmd_prune(const common::Flags& flags) {
  const auto mc = model_config(flags);
  const double budget = flags.get_double("budget", 0.6);
  common::Rng rng(std::uint64_t(flags.get_int("seed", 42)));
  auto model = models::build_model(mc, rng);

  const auto train = make_data(mc, 400, 7);
  const auto val = make_data(mc, 120, 8);
  data::TrainOptions topts;
  topts.epochs = std::size_t(flags.get_int("epochs", 4));
  topts.lr = 0.05;
  data::train_supervised(model, train, topts, rng, model.all_params());
  const double dense_acc = data::evaluate(model, val).accuracy;

  rl::PruningEnv env(model, val, {.flops_budget = budget});
  rl::PpoAgent agent(graph::kNumNodeFeatures, rl::PpoConfig{},
                     std::uint64_t(flags.get_int("seed", 42)) ^ 0xA6E47ULL);
  const auto hist = rl::train_on_pruning(
      agent, env, std::size_t(flags.get_int("rl-rounds", 6)), 3);
  prune::apply_sparsities(model, hist.best_sparsities,
                          prune::Criterion::kL2);
  const double pruned_acc = data::evaluate(model, val).accuracy;
  const double ratio =
      prune::encoder_flops(model) /
      prune::dense_encoder_flops(model.layers());
  std::printf("%s: dense %5.1f%% -> pruned %5.1f%% at %4.1f%% FLOPs "
              "(sparsity %4.1f%%)\n",
              mc.arch.c_str(), dense_acc * 100.0, pruned_acc * 100.0,
              ratio * 100.0, prune::overall_sparsity(model) * 100.0);
  return 0;
}

int cmd_info(const common::Flags& flags) {
  const auto mc = model_config(flags);
  common::Rng rng(1);
  auto model = models::build_model(mc, rng);
  std::printf("%s (input %zux%zu, width x%.2f)\n", mc.arch.c_str(),
              mc.input_size, mc.input_size, mc.width_mult);
  std::printf("  encoder params  : %s\n",
              common::format_count(double(model.encoder_param_count())).c_str());
  std::printf("  predictor params: %s\n",
              common::format_count(double(model.predictor_param_count())).c_str());
  std::printf("  encoder FLOPs   : %s\n",
              common::format_count(
                  prune::dense_encoder_flops(model.layers())).c_str());
  std::printf("  prunable gates  : %zu\n", model.gates().size());
  std::printf("  layers:\n");
  for (std::size_t i = 0; i < model.layers().size(); ++i) {
    const auto& l = model.layers()[i];
    std::printf("   %3zu %-14s %4zu -> %-4zu  %zux%zu -> %zux%zu%s%s\n", i,
                models::layer_kind_name(l.kind).c_str(), l.in_ch, l.out_ch,
                l.in_h, l.in_w, l.out_h, l.out_w,
                l.out_gate >= 0 ? "  [gated]" : "",
                l.skip_from >= 0 ? "  [skip]" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  common::set_log_level(common::LogLevel::kWarn);
  try {
    common::Flags flags(argc, argv, 2);
    // Backend selection applies to every subcommand: evaluate/prune/info run
    // the same GEMM kernels as training. train additionally records it in
    // RunOptions so the runner re-pins it before the round loop.
    const std::string backend = flags.get("backend", "");
    if (!backend.empty()) {
      tensor::set_active_backend(tensor::parse_backend(backend));
    }
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "evaluate") return cmd_evaluate(flags);
    if (cmd == "prune") return cmd_prune(flags);
    if (cmd == "info") return cmd_info(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
