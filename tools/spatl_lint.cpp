// spatl_lint — project-aware static analysis driver for the SPATL tree.
//
// Four passes over src/, tools/, tests/, bench/, examples/ (see
// tools/analysis/ and DESIGN.md §14):
//
//   legacy    the per-file determinism/resource rules: banned-random,
//             chrono-now, fl-unordered, naked-new, pragma-once, raw-thread,
//             raw-stderr, async-wallclock, telemetry-record-type,
//             simd-isolation (vector-intrinsics headers confined to
//             src/tensor/simd/), store-bypass
//   include   include-graph layering (include-layer, include-cycle)
//   ckpt      checkpoint-coverage audit of // ckpt: annotations vs pack /
//             unpack sites (ckpt-unannotated-field, ckpt-missing-pack,
//             ckpt-missing-unpack)
//   rng       RNG stream discipline (rng-stream-owner, rng-conditional-draw,
//             rng-backoff-outcome)
//
// A file opts out of one rule with a comment of the form
//   spatl-lint: allow(<rule>)
// Cross-file findings that predate a rule are grandfathered in the baseline
// file (default tools/analysis/lint_baseline.txt; regenerate with
// --write-baseline after deliberately accepting a finding). Baselined
// findings do not fail the run but stay visible in the SARIF report.
// This tool IS the repo's CLI diagnostics surface, hence:
// spatl-lint: allow(raw-stderr)
//
// Usage: spatl_lint [options] [repo-root]
//   --sarif PATH       write a SARIF 2.1.0 report (all findings, suppressed
//                      ones marked)
//   --baseline PATH    baseline file (default: <root>/tools/analysis/
//                      lint_baseline.txt when present)
//   --no-baseline      ignore any baseline file
//   --write-baseline   rewrite the baseline from the current findings, then
//                      exit 0
//   --pass NAMES       comma-separated subset of legacy,include,ckpt,rng
//
// Exit: 0 clean (or fully baselined), 1 non-baselined findings, 2 error.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"

namespace {

namespace fs = std::filesystem;
using namespace spatl::analysis;

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return bool(out);
}

std::string read_text(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = bool(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  std::string baseline_path;
  bool no_baseline = false;
  bool write_baseline = false;
  std::string passes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "spatl_lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sarif") {
      sarif_path = value("--sarif");
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--pass") {
      passes = value("--pass");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "spatl_lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      root = arg;
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "spatl_lint: not a directory: %s\n", root.c_str());
    return 2;
  }

  Options options;
  if (!passes.empty()) {
    options = Options{false, false, false, false};
    std::stringstream ss(passes);
    std::string one;
    while (std::getline(ss, one, ',')) {
      if (one == "legacy") {
        options.legacy = true;
      } else if (one == "include") {
        options.include_graph = true;
      } else if (one == "ckpt") {
        options.ckpt = true;
      } else if (one == "rng") {
        options.rng = true;
      } else {
        std::fprintf(stderr, "spatl_lint: unknown pass '%s'\n", one.c_str());
        return 2;
      }
    }
  }

  const Project project = load_project(root);
  for (const auto& path : project.errors) {
    std::fprintf(stderr, "spatl_lint: cannot read %s\n", path.c_str());
  }
  if (!project.errors.empty()) return 2;

  Report report = analyze(project, options);

  if (baseline_path.empty()) {
    const fs::path candidate =
        fs::path(root) / "tools" / "analysis" / "lint_baseline.txt";
    if (fs::is_regular_file(candidate)) baseline_path = candidate.string();
  }

  if (write_baseline) {
    if (baseline_path.empty()) {
      baseline_path =
          (fs::path(root) / "tools" / "analysis" / "lint_baseline.txt")
              .string();
    }
    const std::string body =
        "# spatl_lint baseline — grandfathered findings, one per line:\n"
        "#   <rule> <file> | <trimmed source line>\n"
        "# Matching ignores line numbers, so entries survive unrelated "
        "edits.\n"
        "# Regenerate with: spatl_lint --write-baseline <repo-root>\n" +
        format_baseline(report, project);
    if (!write_text(baseline_path, body)) {
      std::fprintf(stderr, "spatl_lint: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("spatl-lint: baseline with %zu finding(s) written to %s\n",
                report.findings.size(), baseline_path.c_str());
    return 0;
  }

  std::size_t stale = 0;
  if (!no_baseline && !baseline_path.empty()) {
    bool ok = false;
    const std::string text = read_text(baseline_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "spatl_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    stale = apply_baseline(&report, project, parse_baseline(text));
  }

  if (!sarif_path.empty()) {
    if (!write_text(sarif_path, to_sarif(report))) {
      std::fprintf(stderr, "spatl_lint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
  }

  std::size_t open = 0;
  std::size_t suppressed = 0;
  for (const auto& f : report.findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++open;
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (stale > 0) {
    std::fprintf(stderr,
                 "spatl_lint: warning: %zu stale baseline entr%s (finding "
                 "fixed but still listed) — regenerate with "
                 "--write-baseline\n",
                 stale, stale == 1 ? "y" : "ies");
  }

  for (const auto& [rule, counts] : rule_counts(report)) {
    std::printf("spatl-lint:   %-24s %zu finding(s), %zu baselined\n",
                rule.c_str(), counts.first, counts.second);
  }
  std::printf(
      "spatl-lint: %zu file(s), %zu finding(s) (%zu baselined), %zu with "
      "allow exceptions\n",
      report.files_scanned, report.findings.size(), suppressed,
      report.files_with_allow);
  return open == 0 ? 0 : 1;
}
