// spatl_lint — repo-invariant checker for the SPATL source tree.
//
// Scans src/, tools/, tests/, bench/, examples/ for constructs that break
// the repository's determinism and resource-safety contracts:
//
//   banned-random   rand()/srand()/std::random_device/time() — all
//                   randomness must flow through common::Rng seeds so runs
//                   are replayable.
//   chrono-now      argless <chrono> clock ::now() outside
//                   src/common/timer.hpp — wall-clock reads hidden in
//                   compute paths break bit-reproducible simulation.
//   fl-unordered    std::unordered_map/std::unordered_set inside src/fl —
//                   hash-order iteration reorders float aggregation.
//   naked-new       raw new/delete — ownership goes through containers and
//                   smart pointers ('= delete' declarations are fine).
//   pragma-once     every .hpp must start its include guard with
//                   #pragma once.
//   raw-thread      std::thread/std::jthread outside
//                   src/common/thread_pool.* — all parallelism goes through
//                   the pool so determinism and shutdown stay centralized.
//   raw-stderr      fprintf(stderr, ...)/std::cerr outside
//                   src/common/log.cpp and the src/obs exporters — ad-hoc
//                   stderr writes bypass the log-level filter and interleave
//                   with telemetry output.
//   async-wallclock any clock machinery (<chrono> types, sleep_for, the
//                   common/timer.hpp helper) inside src/fl/async.* — the
//                   semi-async straggler buffer is keyed on simulated
//                   virtual time only; a wall-clock read there would make
//                   buffered runs machine-dependent.
//   store-bypass    raw tensor-container I/O (save_tensors/load_tensors/
//                   write_tensors/read_tensors) inside src/fl outside
//                   src/fl/store — run state must flow through the durable
//                   store layer (atomic tmp+rename commits, CRC
//                   verification, generational retention); a direct write
//                   reopens the torn-write corruption hole the store closes.
//
// A file opts out of one rule with a comment of the form
//   spatl-lint: allow(<rule>)        (inside any // or /* */ comment)
// which documents the exception in place. Comment and string literal
// contents are excluded from rule matching, so prose never trips a rule.
// This tool IS the repo's CLI diagnostics surface, hence:
// spatl-lint: allow(raw-stderr)
//
// Usage: spatl_lint [repo-root]   (exit 0 clean, 1 violations, 2 error)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;   // repo-relative path
  std::size_t line;   // 1-based
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replace comment and string/char literal contents with spaces, preserving
/// newlines so line numbers survive. Escape sequences inside literals are
/// honoured.
std::string strip_comments_and_strings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += c;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

/// Token occurrence: `token` at position p with no identifier character
/// immediately before or after (tokens may themselves end in '(').
bool token_at(const std::string& text, std::size_t p,
              const std::string& token) {
  if (p > 0 && ident_char(text[p - 1])) return false;
  const std::size_t end = p + token.size();
  if (!token.empty() && ident_char(token.back()) && end < text.size() &&
      ident_char(text[end])) {
    return false;
  }
  return true;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return std::size_t(std::count(text.begin(), text.begin() + long(pos), '\n')) +
         1;
}

/// All token occurrences of `token` in stripped `text`.
std::vector<std::size_t> find_token(const std::string& text,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  for (std::size_t p = text.find(token); p != std::string::npos;
       p = text.find(token, p + 1)) {
    if (token_at(text, p, token)) hits.push_back(p);
  }
  return hits;
}

/// Rules a file opted out of via allow comments (parsed from the raw text,
/// since the directive lives inside a comment).
std::set<std::string> allowed_rules(const std::string& raw) {
  std::set<std::string> rules;
  const std::string directive = "spatl-lint: allow(";
  for (std::size_t p = raw.find(directive); p != std::string::npos;
       p = raw.find(directive, p + 1)) {
    std::size_t q = p + directive.size();
    std::string name;
    while (q < raw.size() &&
           (ident_char(raw[q]) || raw[q] == '-' || raw[q] == ',')) {
      name += raw[q++];
    }
    if (q < raw.size() && raw[q] == ')') {
      std::stringstream ss(name);
      std::string one;
      while (std::getline(ss, one, ',')) {
        if (!one.empty()) rules.insert(one);
      }
    }
  }
  return rules;
}

struct FileReport {
  std::string rel;
  std::string raw;
  std::string code;  // comments/strings blanked
  std::set<std::string> allowed;
  std::vector<Violation>* out;

  void add(const std::string& rule, std::size_t pos,
           const std::string& message) {
    if (allowed.count(rule)) return;
    out->push_back({rel, line_of(code, pos), rule, message});
  }
};

void check_banned_random(FileReport& f) {
  for (const char* token : {"rand(", "srand(", "time("}) {
    for (std::size_t p : find_token(f.code, token)) {
      f.add("banned-random", p,
            std::string(token) +
                ") call — use a seeded common::Rng so runs replay");
    }
  }
  for (std::size_t p : find_token(f.code, "random_device")) {
    f.add("banned-random", p,
          "std::random_device — nondeterministic entropy source");
  }
}

void check_chrono_now(FileReport& f) {
  if (f.rel == "src/common/timer.hpp") return;
  for (std::size_t p : find_token(f.code, "now(")) {
    if (p >= 2 && f.code[p - 1] == ':' && f.code[p - 2] == ':') {
      f.add("chrono-now", p,
            "clock ::now() outside common/timer.hpp — wall-clock reads "
            "break reproducibility");
    }
  }
}

void check_fl_unordered(FileReport& f) {
  if (f.rel.rfind("src/fl/", 0) != 0) return;
  for (const char* token : {"unordered_map", "unordered_set"}) {
    for (std::size_t p : find_token(f.code, token)) {
      f.add("fl-unordered", p,
            std::string("std::") + token +
                " in an aggregation path — hash-order iteration reorders "
                "float reductions; use std::map/std::vector");
    }
  }
}

void check_naked_new(FileReport& f) {
  for (std::size_t p : find_token(f.code, "new")) {
    f.add("naked-new", p, "raw new — use containers or std::make_unique");
  }
  for (std::size_t p : find_token(f.code, "delete")) {
    std::size_t q = p;
    while (q > 0 && std::isspace(static_cast<unsigned char>(f.code[q - 1]))) {
      --q;
    }
    if (q > 0 && f.code[q - 1] == '=') continue;  // deleted member function
    f.add("naked-new", p, "raw delete — ownership must be RAII-managed");
  }
}

void check_pragma_once(FileReport& f) {
  if (f.rel.size() < 4 || f.rel.substr(f.rel.size() - 4) != ".hpp") return;
  if (f.raw.find("#pragma once") == std::string::npos) {
    f.add("pragma-once", 0, "header is missing #pragma once");
  }
}

void check_raw_thread(FileReport& f) {
  if (f.rel == "src/common/thread_pool.hpp" ||
      f.rel == "src/common/thread_pool.cpp") {
    return;
  }
  for (const char* token : {"thread", "jthread"}) {
    for (std::size_t p : find_token(f.code, token)) {
      if (p >= 5 && f.code.compare(p - 5, 5, "std::") == 0) {
        f.add("raw-thread", p,
              std::string("std::") + token +
                  " outside common/thread_pool — route parallelism through "
                  "ThreadPool/parallel_for");
      }
    }
  }
}

void check_raw_stderr(FileReport& f) {
  if (f.rel == "src/common/log.cpp") return;    // the sanctioned log sink
  if (f.rel.rfind("src/obs/", 0) == 0) return;  // telemetry exporters
  for (std::size_t p : find_token(f.code, "stderr")) {
    f.add("raw-stderr", p,
          "raw stderr write — route diagnostics through common/log.hpp "
          "(log_warn/log_error)");
  }
  for (std::size_t p : find_token(f.code, "cerr")) {
    if (p >= 5 && f.code.compare(p - 5, 5, "std::") == 0) {
      f.add("raw-stderr", p,
            "std::cerr — route diagnostics through common/log.hpp "
            "(log_warn/log_error)");
    }
  }
}

void check_async_wallclock(FileReport& f) {
  if (f.rel.rfind("src/fl/async", 0) != 0) return;
  // Stricter than chrono-now: in the semi-async buffer even naming a clock
  // type is banned, because any time source other than the fault model's
  // virtual compute_time would break bit-reproducible buffered runs.
  for (const char* token : {"chrono", "steady_clock", "system_clock",
                            "high_resolution_clock", "time_point",
                            "sleep_for"}) {
    for (std::size_t p : find_token(f.code, token)) {
      f.add("async-wallclock", p,
            std::string(token) +
                " in src/fl/async — the straggler buffer runs on virtual "
                "time only (FaultModel compute_time draws)");
    }
  }
  // The include lives inside a string literal (blanked in f.code), so the
  // raw text is the only place to catch it.
  // Newlines survive stripping, so the raw position maps to the same line.
  const std::size_t inc = f.raw.find("common/timer.hpp");
  if (inc != std::string::npos) {
    f.add("async-wallclock", inc,
          "common/timer.hpp include in src/fl/async — timers are wall "
          "clocks; key buffering on simulated compute_time instead");
  }
}

void check_store_bypass(FileReport& f) {
  if (f.rel.rfind("src/fl/", 0) != 0) return;
  if (f.rel.rfind("src/fl/store/", 0) == 0) return;  // the sanctioned layer
  for (const char* token : {"save_tensors", "load_tensors", "write_tensors",
                            "read_tensors"}) {
    for (std::size_t p : find_token(f.code, token)) {
      f.add("store-bypass", p,
            std::string(token) +
                " in src/fl outside fl/store — route run-state persistence "
                "through the durable store (atomic commit + CRC "
                "verification + retention)");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "spatl_lint: not a directory: %s\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<fs::path> files;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  std::size_t allowed_files = 0;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "spatl_lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    FileReport f;
    f.rel = fs::relative(path, root).generic_string();
    f.raw = buf.str();
    f.code = strip_comments_and_strings(f.raw);
    f.allowed = allowed_rules(f.raw);
    if (!f.allowed.empty()) ++allowed_files;
    f.out = &violations;
    check_banned_random(f);
    check_chrono_now(f);
    check_fl_unordered(f);
    check_naked_new(f);
    check_pragma_once(f);
    check_raw_thread(f);
    check_raw_stderr(f);
    check_async_wallclock(f);
    check_store_bypass(f);
  }

  for (const auto& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  std::printf("spatl-lint: %zu file(s), %zu violation(s), %zu with allow "
              "exceptions\n",
              files.size(), violations.size(), allowed_files);
  return violations.empty() ? 0 : 1;
}
